package freshness

import (
	"math"
	"testing"
)

// TestChainFreshnessBoundaryCases pins the chain form's limits for both
// policies: perfect levels contribute factor 1, a dead level zeroes the
// chain, and an unchanging element is always fresh end to end.
func TestChainFreshnessBoundaryCases(t *testing.T) {
	for _, p := range policies {
		if got := ChainFreshness(p, 2, 3, 0); got != 1 {
			t.Errorf("%s: chain with λ=0 = %v, want 1", p.Name(), got)
		}
		if got := ChainFreshness(p, 0, 3, 1); got != 0 {
			t.Errorf("%s: chain with dead upstream = %v, want 0", p.Name(), got)
		}
		if got := ChainFreshness(p, 3, 0, 1); got != 0 {
			t.Errorf("%s: chain with dead edge = %v, want 0", p.Name(), got)
		}
		// A perfect upstream degrades the chain to the single-level form
		// exactly — this is the +Inf special case the FixedOrder closed
		// form (written in r = λ/f) cannot evaluate on its own.
		want := p.Freshness(1.5, 2)
		if got := ChainFreshness(p, math.Inf(1), 1.5, 2); got != want {
			t.Errorf("%s: chain with perfect upstream = %v, want single-level %v", p.Name(), got, want)
		}
		if got := ChainFreshness(p, 1.5, math.Inf(1), 2); got != want {
			t.Errorf("%s: chain with perfect edge = %v, want single-level %v", p.Name(), got, want)
		}
	}
}

// TestChainFreshnessFactorizes checks the product form against the two
// single-level factors directly, across a frequency/rate grid.
func TestChainFreshnessFactorizes(t *testing.T) {
	grid := []float64{0.1, 0.5, 1, 2, 8}
	for _, p := range policies {
		for _, f1 := range grid {
			for _, f2 := range grid {
				for _, lam := range grid {
					want := p.Freshness(f1, lam) * p.Freshness(f2, lam)
					if got := ChainFreshness(p, f1, f2, lam); math.Abs(got-want) > 1e-15 {
						t.Errorf("%s: chain(%v,%v,λ=%v) = %v, want product %v", p.Name(), f1, f2, lam, got, want)
					}
				}
			}
		}
	}
}

// TestChainPerceived checks the aggregate form and its error paths.
func TestChainPerceived(t *testing.T) {
	elems := []Element{
		{ID: 0, Lambda: 2, AccessProb: 0.7, Size: 1},
		{ID: 1, Lambda: 0.5, AccessProb: 0.3, Size: 1},
	}
	up := []float64{4, 1}
	edge := []float64{2, 2}
	for _, p := range policies {
		got, err := ChainPerceived(p, elems, up, edge)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		want := 0.0
		for i, e := range elems {
			want += e.AccessProb * p.Freshness(up[i], e.Lambda) * p.Freshness(edge[i], e.Lambda)
		}
		if math.Abs(got-want) > 1e-15 {
			t.Errorf("%s: ChainPerceived = %v, want %v", p.Name(), got, want)
		}
	}
	if _, err := ChainPerceived(FixedOrder{}, elems, up[:1], edge); err == nil {
		t.Error("misaligned upstream frequencies accepted")
	}
	if _, err := ChainPerceived(FixedOrder{}, elems, up, edge[:1]); err == nil {
		t.Error("misaligned edge frequencies accepted")
	}
}

// FuzzChainFreshness fuzzes the chain closed form over both policies:
// the result stays in [0, 1], is monotone non-decreasing in each
// level's sync rate, never exceeds either single-level factor, and
// degrades to the single-level form when the other level is perfect.
func FuzzChainFreshness(f *testing.F) {
	f.Add(1.0, 1.0, 1.0)
	f.Add(0.0, 2.0, 0.5)
	f.Add(2.0, 0.0, 0.5)
	f.Add(1e-9, 1e9, 3.0)
	f.Add(250.0, 250.0, 2.0)
	f.Add(0.25, 4.0, 1e-8)
	f.Fuzz(func(t *testing.T, f1, f2, lam float64) {
		if math.IsNaN(f1) || math.IsNaN(f2) || math.IsNaN(lam) {
			t.Skip()
		}
		if f1 < 0 || f2 < 0 || lam < 0 {
			t.Skip()
		}
		for _, p := range policies {
			got := ChainFreshness(p, f1, f2, lam)
			if math.IsNaN(got) || got < 0 || got > 1 {
				t.Fatalf("%s: chain(%v,%v,λ=%v) = %v outside [0,1]", p.Name(), f1, f2, lam, got)
			}
			// Monotone in each level's rate. The product of two monotone
			// factors computed from stable closed forms is monotone to
			// within a final rounding; the epsilon absorbs exactly that.
			const eps = 1e-12
			if up := ChainFreshness(p, f1*1.5+1e-12, f2, lam); up < got-eps {
				t.Fatalf("%s: chain not monotone in upstream rate at (%v,%v,λ=%v): %v -> %v", p.Name(), f1, f2, lam, got, up)
			}
			if up := ChainFreshness(p, f1, f2*1.5+1e-12, lam); up < got-eps {
				t.Fatalf("%s: chain not monotone in edge rate at (%v,%v,λ=%v): %v -> %v", p.Name(), f1, f2, lam, got, up)
			}
			// Never fresher than either hop alone.
			if c1 := chainFactor(p, f1, lam); got > c1+eps {
				t.Fatalf("%s: chain %v exceeds upstream factor %v", p.Name(), got, c1)
			}
			if c2 := chainFactor(p, f2, lam); got > c2+eps {
				t.Fatalf("%s: chain %v exceeds edge factor %v", p.Name(), got, c2)
			}
			// Perfect-upstream degeneration: the chain collapses to the
			// single-level form for the edge, exactly.
			if single := chainFactor(p, f2, lam); ChainFreshness(p, math.Inf(1), f2, lam) != single {
				t.Fatalf("%s: chain with perfect upstream != single-level form %v", p.Name(), single)
			}
		}
	})
}
