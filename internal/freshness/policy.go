package freshness

import "math"

// Policy is a synchronization-order policy: it determines the
// time-averaged freshness an element attains for a given refresh
// frequency and change rate. The paper follows Cho & Garcia-Molina in
// adopting the Fixed-Order policy throughout; the Poisson-Order policy
// is provided for the repository's policy ablation.
//
// Implementations must satisfy, for every lambda >= 0:
//
//   - Freshness(0, lambda) = 0 when lambda > 0 and 1 when lambda = 0,
//   - Freshness is concave and strictly increasing in f with limit 1,
//   - Marginal is the partial derivative dF/df, non-negative and
//     non-increasing in f.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Freshness returns the time-averaged freshness of an element with
	// change rate lambda refreshed freq times per period.
	Freshness(freq, lambda float64) float64
	// Marginal returns dFreshness/dfreq at (freq, lambda). At freq = 0
	// it returns the right-hand limit, the element's marginal value of
	// its first sliver of bandwidth.
	Marginal(freq, lambda float64) float64
	// InvertMarginal returns the frequency at which Marginal equals
	// target, or 0 when even the first sliver of bandwidth is worth
	// less than target. Target must be positive.
	InvertMarginal(target, lambda float64) float64
}

// WarmStartInverter is an optional Policy extension for solvers whose
// inner loop calls InvertMarginal many times per element with a
// slowly moving target (the water-filling bisection moves its
// multiplier a little per iteration). InvertMarginalWarm returns the
// same frequency InvertMarginal would, plus an opaque per-element hint
// that seeds the next inversion for the same element; a zero hint
// means cold start. Implementations must accept an arbitrary
// non-negative hint and still converge to the correct root — a stale
// or wildly wrong hint may only cost iterations, never accuracy.
type WarmStartInverter interface {
	InvertMarginalWarm(target, lambda, hint float64) (freq, nextHint float64)
}

// FixedOrder is the paper's synchronization policy: every element is
// refreshed at evenly spaced instants, all elements in the same order
// each period. Cho & Garcia-Molina's closed form for its time-averaged
// freshness is
//
//	F(f, λ) = (f/λ)·(1 − e^(−λ/f))
//
// with F(0, λ>0) = 0 and F(f, 0) = 1.
type FixedOrder struct{}

// Name implements Policy.
func (FixedOrder) Name() string { return "fixed-order" }

// Freshness implements Policy.
func (FixedOrder) Freshness(freq, lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	if freq <= 0 {
		return 0
	}
	r := lambda / freq
	// -(expm1(-r))/r is numerically stable for small r where the naive
	// form loses all precision.
	return -math.Expm1(-r) / r
}

// Marginal implements Policy. The derivative has the closed form
//
//	∂F/∂f = (1 − e^(−r)·(1+r)) / λ,   r = λ/f,
//
// which decreases from 1/λ at f→0⁺ to 0 as f→∞.
func (FixedOrder) Marginal(freq, lambda float64) float64 {
	if lambda <= 0 {
		return 0
	}
	if freq <= 0 {
		return 1 / lambda
	}
	r := lambda / freq
	return fixedOrderG(r) / lambda
}

// fixedOrderG is g(r) = 1 − e^(−r)(1+r), the dimensionless part of the
// Fixed-Order marginal. It increases from 0 at r=0 to 1 as r→∞.
func fixedOrderG(r float64) float64 {
	if r <= 0 {
		return 0
	}
	if r < 1e-4 {
		// Series: g(r) = r²/2 − r³/3 + r⁴/8 − …; two terms suffice.
		return r * r * (0.5 - r/3)
	}
	return 1 - math.Exp(-r)*(1+r)
}

// InvertMarginal implements Policy: solve g(λ/f)/λ = target for f.
func (fo FixedOrder) InvertMarginal(target, lambda float64) float64 {
	f, _ := fo.InvertMarginalWarm(target, lambda, 0)
	return f
}

// InvertMarginalWarm implements WarmStartInverter. The hint is the
// dimensionless root r = λ/f of the previous inversion for the same
// element; when the solver's multiplier moves a little between calls,
// the safeguarded Newton below converges from the hint in one or two
// exp evaluations instead of the handful a cold start needs.
func (FixedOrder) InvertMarginalWarm(target, lambda, hint float64) (float64, float64) {
	if lambda <= 0 || target <= 0 {
		return 0, 0
	}
	want := target * lambda // g(r) sought, in (0, 1)
	if want > 1-1e-9 {
		// Near or at the funding cutoff. Two numerical hazards meet
		// here: 1 − want cancels catastrophically, and g(r) rounds to
		// 1.0 for r ≳ 37 so bisection on g cannot resolve the root.
		// Compute δ = 1 − target·λ in one rounding via FMA (kept out
		// of the common path because math.FMA falls back to software
		// on pre-FMA3 CPUs), then solve e^(−r)(1+r) = δ by the fixed
		// point r = log1p(r) − log δ (a contraction with rate
		// 1/(1+r), globally convergent for any positive seed, so a
		// warm hint is a valid start), accurate down to δ = 5e−324.
		// Without this branch the inversion — and therefore the
		// water-filling solver's bandwidth usage — would jump by λ/37
		// at every element's funding cutoff.
		delta := math.FMA(-target, lambda, 1)
		if delta <= 0 {
			// The target meets or exceeds the f->0 limit 1/λ: no
			// positive frequency attains it.
			return 0, 0
		}
		logDelta := math.Log(delta)
		r := hint
		if !(r > 0) {
			r = -logDelta
		}
		for i := 0; i < 100; i++ {
			next := math.Log1p(r) - logDelta
			if math.Abs(next-r) <= 1e-14*next {
				r = next
				break
			}
			r = next
		}
		return lambda / r, r
	}
	r := fixedOrderInvertG(want, hint)
	if r <= 0 {
		return 0, 0
	}
	return lambda / r, r
}

// fixedOrderInvertG solves g(r) = want for r ∈ (0, ∞) given want in
// (0, 1−1e-9]. g is increasing in r; the root is found by Newton
// safeguarded with a bracket (g' = r·e^(−r) changes convexity at r = 1,
// so raw Newton can overshoot). Each iteration costs one exp, and a
// warm seed near the root converges in 1–2 steps — this inversion is
// the inner loop of the whole solver.
func fixedOrderInvertG(want, seed float64) float64 {
	// Cold-start estimate, within a factor of two of the root on both
	// branches: g(r) ≈ r²/2 for small r, and 1 − g(r) = e^(−r)(1+r) ≈
	// e^(−r)·r for larger r.
	r0 := math.Sqrt(2 * want)
	if want >= 0.5 {
		r0 = -math.Log1p(-want)
		if r0 < 1 {
			r0 = 1
		}
	}
	r := seed
	if !(r > 0.25*r0 && r < 4*r0) {
		// No seed, or a stale one far from the root. A hint left by an
		// inversion in a different regime (the solver probes funding
		// cutoffs, then multipliers dozens of orders of magnitude
		// smaller) would push Newton out of the bracket and demote the
		// search to arithmetic bisection across that whole span, which
		// exhausts the iteration budget and returns an off-by-percents
		// root. The cold estimate is always close; starting there keeps
		// the warm-start contract: a bad hint costs steps, not accuracy.
		r = r0
	}
	lo, hi := 0.0, math.Inf(1)
	for i := 0; i < 80; i++ {
		e := math.Exp(-r)
		var g float64
		if r < 1e-4 {
			// Series: the closed form loses all precision here.
			g = r * r * (0.5 - r/3)
		} else {
			g = 1 - e*(1+r)
		}
		if g < want {
			lo = r
		} else {
			hi = r
		}
		var next float64
		stepped := false
		if d := r * e; d > 0 {
			next = r - (g-want)/d
			if next == r {
				// The Newton step is below one ulp of r: the iterate
				// is as converged as float64 can express. Without this
				// return the bracket test below would see no movement
				// (lo or hi was just set to r), misread the situation
				// as Newton escaping the bracket, and the hi=+Inf
				// safeguard would fling the iterate to 2 — which then
				// costs ~80 halvings to undo and can exhaust the
				// iteration budget, returning a root off by a factor.
				return r
			}
			stepped = next > lo && next < hi
		}
		if !stepped {
			// Newton left the bracket (bad warm seed or convexity
			// flip): double upward while the root is unbracketed,
			// bisect once it is.
			if math.IsInf(hi, 1) {
				next = 2 * math.Max(r, 1)
			} else {
				next = 0.5 * (lo + hi)
			}
		}
		// Newton converges quadratically here, so the error left after
		// a step of size s is ≈ |1−r|/(2r)·s²: once a Newton step is
		// down to 1e-8·r the iterate is already ~1e-15-accurate, and
		// waiting for the step itself to reach 1e-15 would pay two more
		// exp evaluations per inversion for nothing. Safeguard steps
		// (doubling/bisection) carry no such guarantee and keep the
		// strict criterion.
		if stepped {
			if math.Abs(next-r) <= 1e-8*next {
				return next
			}
		} else if math.Abs(next-r) <= 1e-15*next {
			return next
		}
		r = next
	}
	return r
}

// PoissonOrder refreshes each element at exponentially distributed
// intervals (a Poisson process with rate f). Its time-averaged
// freshness is F(f, λ) = f/(f+λ): the probability the most recent
// refresh happened after the most recent change. The paper cites Cho &
// Garcia-Molina's result that Fixed-Order dominates this policy; the
// repository's ablation benchmark quantifies by how much.
type PoissonOrder struct{}

// Name implements Policy.
func (PoissonOrder) Name() string { return "poisson-order" }

// Freshness implements Policy.
func (PoissonOrder) Freshness(freq, lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	if freq <= 0 {
		return 0
	}
	return freq / (freq + lambda)
}

// Marginal implements Policy: ∂F/∂f = λ/(f+λ)².
func (PoissonOrder) Marginal(freq, lambda float64) float64 {
	if lambda <= 0 {
		return 0
	}
	if freq < 0 {
		freq = 0
	}
	d := freq + lambda
	return lambda / (d * d)
}

// InvertMarginal implements Policy with the closed form
// f = sqrt(λ/target) − λ.
func (PoissonOrder) InvertMarginal(target, lambda float64) float64 {
	if lambda <= 0 || target <= 0 {
		return 0
	}
	f := math.Sqrt(lambda/target) - lambda
	if f < 0 {
		return 0
	}
	return f
}

// InvertMarginalWarm implements WarmStartInverter. The inversion is
// closed-form, so the hint is unused; implementing the interface keeps
// the Poisson policy on the solver engine's pruned fast path.
func (po PoissonOrder) InvertMarginalWarm(target, lambda, _ float64) (float64, float64) {
	return po.InvertMarginal(target, lambda), 0
}
