package freshness

import "fmt"

// ChainFreshness is the end-to-end time-averaged freshness of an
// element served from a two-level chain: a regional mirror syncs
// against the source upFreq times per period, and an edge mirror syncs
// against the regional copy edgeFreq times per period.
//
// Derivation. The edge copy at time t is the regional copy as of the
// edge's last sync s2, which in turn is the source value as of the
// regional's last sync s1 ≤ s2 before it. Versions never recur, so the
// edge is fresh iff no source change landed in (s1, t]. Split the
// exposure: t − s1 = (t − s2) + (s2 − s1), where t − s2 is the edge's
// sync age and s2 − s1 is the regional's sync age sampled at the edge's
// sync instant. Under both implemented disciplines the two ages are
// independent — the levels' sync processes run on independent phases
// (fixed-order) or are memoryless (Poisson) — and each age has exactly
// the distribution the single-level closed form integrates over:
// uniform on [0, 1/f) for fixed-order, exponential with rate f for
// Poisson. With Poisson changes of rate λ,
//
//	P[fresh] = E[e^(−λ(t−s1))] = E[e^(−λ(t−s2))] · E[e^(−λ(s2−s1))]
//	         = F(edgeFreq, λ) · F(upFreq, λ),
//
// the product of the per-level single-level forms. This matches the
// cache-updating analysis of Bastopcu & Ulukus (2020), where a cache's
// end-to-end freshness likewise factors across hops.
//
// A level that never lets its copy age — λ ≤ 0, or an infinite sync
// frequency — contributes factor 1, so the chain degrades to the
// single-level form when either hop is perfect. (The +Inf case is
// handled explicitly: the FixedOrder closed form is written in r = λ/f
// and does not evaluate at f = +Inf.)
func ChainFreshness(p Policy, upFreq, edgeFreq, lambda float64) float64 {
	return chainFactor(p, upFreq, lambda) * chainFactor(p, edgeFreq, lambda)
}

// chainFactor is one level's contribution to the chain product: the
// single-level closed form, with the perfect-level limit made exact.
func chainFactor(p Policy, freq, lambda float64) float64 {
	if lambda <= 0 || freq > maxFiniteFreq {
		return 1
	}
	return p.Freshness(freq, lambda)
}

// maxFiniteFreq guards the closed forms against +Inf frequencies: any
// level syncing more than ~1e300 times per period is exactly fresh at
// float64 precision anyway.
const maxFiniteFreq = 1e300

// ChainPerceived is the end-to-end perceived freshness of a two-level
// chain: Σ pᵢ · F(upFreqᵢ, λᵢ) · F(edgeFreqᵢ, λᵢ), the chain analogue
// of Perceived. Both frequency slices must be element-aligned.
func ChainPerceived(p Policy, elems []Element, upFreqs, edgeFreqs []float64) (float64, error) {
	if len(upFreqs) != len(elems) || len(edgeFreqs) != len(elems) {
		return 0, fmt.Errorf("freshness: %d upstream and %d edge frequencies for %d elements",
			len(upFreqs), len(edgeFreqs), len(elems))
	}
	if err := ValidateElements(elems); err != nil {
		return 0, err
	}
	var pf float64
	for i, e := range elems {
		pf += e.AccessProb * ChainFreshness(p, upFreqs[i], edgeFreqs[i], e.Lambda)
	}
	return pf, nil
}
