package freshness

import "fmt"

// errLenMismatch reports an element/frequency vector length mismatch.
func errLenMismatch(elems, freqs int) error {
	return fmt.Errorf("freshness: %d elements but %d frequencies", elems, freqs)
}

// Perceived returns the perceived freshness of the mirror under the
// given refresh frequencies: Σᵢ pᵢ·F(fᵢ, λᵢ) (the paper's Definition 4
// combined with its Section 2 identity PF = Σ pᵢ F̄ᵢ). The freqs slice
// must be element-aligned with elems.
func Perceived(p Policy, elems []Element, freqs []float64) (float64, error) {
	if len(elems) != len(freqs) {
		return 0, fmt.Errorf("freshness: %d elements but %d frequencies", len(elems), len(freqs))
	}
	var pf float64
	for i, e := range elems {
		pf += e.AccessProb * p.Freshness(freqs[i], e.Lambda)
	}
	return pf, nil
}

// Average returns the unweighted mean freshness (1/N)·Σᵢ F(fᵢ, λᵢ),
// the objective of the paper's GF baseline (Cho & Garcia-Molina).
func Average(p Policy, elems []Element, freqs []float64) (float64, error) {
	if len(elems) != len(freqs) {
		return 0, fmt.Errorf("freshness: %d elements but %d frequencies", len(elems), len(freqs))
	}
	if len(elems) == 0 {
		return 0, fmt.Errorf("freshness: mirror has no elements")
	}
	var sum float64
	for i, e := range elems {
		sum += p.Freshness(freqs[i], e.Lambda)
	}
	return sum / float64(len(elems)), nil
}

// BandwidthUsed returns Σᵢ sᵢ·fᵢ, the bandwidth a frequency vector
// consumes under the extended (variable-size) constraint; with unit
// sizes it is simply the total number of refreshes per period.
func BandwidthUsed(elems []Element, freqs []float64) (float64, error) {
	if len(elems) != len(freqs) {
		return 0, fmt.Errorf("freshness: %d elements but %d frequencies", len(elems), len(freqs))
	}
	var b float64
	for i, e := range elems {
		b += e.Size * freqs[i]
	}
	return b, nil
}
