package freshness

import "fmt"

// errLenMismatch reports an element/frequency vector length mismatch.
func errLenMismatch(elems, freqs int) error {
	return fmt.Errorf("freshness: %d elements but %d frequencies", elems, freqs)
}

// Perceived returns the perceived freshness of the mirror under the
// given refresh frequencies: Σᵢ pᵢ·F(fᵢ, λᵢ) (the paper's Definition 4
// combined with its Section 2 identity PF = Σ pᵢ F̄ᵢ). The freqs slice
// must be element-aligned with elems. Large mirrors are reduced over
// deterministic shards in parallel: each Freshness evaluation costs an
// exp, which dominates scoring at web-mirror scale.
func Perceived(p Policy, elems []Element, freqs []float64) (float64, error) {
	if len(elems) != len(freqs) {
		return 0, errLenMismatch(len(elems), len(freqs))
	}
	pf := reduceShards(len(elems), func(lo, hi int) float64 {
		var sum float64
		for i := lo; i < hi; i++ {
			sum += elems[i].AccessProb * p.Freshness(freqs[i], elems[i].Lambda)
		}
		return sum
	})
	return pf, nil
}

// Average returns the unweighted mean freshness (1/N)·Σᵢ F(fᵢ, λᵢ),
// the objective of the paper's GF baseline (Cho & Garcia-Molina).
// Reduced the same sharded way as Perceived.
func Average(p Policy, elems []Element, freqs []float64) (float64, error) {
	if len(elems) != len(freqs) {
		return 0, errLenMismatch(len(elems), len(freqs))
	}
	if len(elems) == 0 {
		return 0, fmt.Errorf("freshness: mirror has no elements")
	}
	sum := reduceShards(len(elems), func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += p.Freshness(freqs[i], elems[i].Lambda)
		}
		return s
	})
	return sum / float64(len(elems)), nil
}

// BandwidthUsed returns Σᵢ sᵢ·fᵢ, the bandwidth a frequency vector
// consumes under the extended (variable-size) constraint; with unit
// sizes it is simply the total number of refreshes per period.
func BandwidthUsed(elems []Element, freqs []float64) (float64, error) {
	if len(elems) != len(freqs) {
		return 0, errLenMismatch(len(elems), len(freqs))
	}
	b := reduceShards(len(elems), func(lo, hi int) float64 {
		var sum float64
		for i := lo; i < hi; i++ {
			sum += elems[i].Size * freqs[i]
		}
		return sum
	})
	return b, nil
}
