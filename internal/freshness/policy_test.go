package freshness

import (
	"math"
	"testing"
	"testing/quick"
)

var policies = []Policy{FixedOrder{}, PoissonOrder{}}

func TestFreshnessBoundaryCases(t *testing.T) {
	for _, p := range policies {
		if got := p.Freshness(0, 2); got != 0 {
			t.Errorf("%s: F(0, 2) = %v, want 0", p.Name(), got)
		}
		if got := p.Freshness(3, 0); got != 1 {
			t.Errorf("%s: F(3, 0) = %v, want 1", p.Name(), got)
		}
		if got := p.Freshness(0, 0); got != 1 {
			t.Errorf("%s: F(0, 0) = %v, want 1 (unchanging element is always fresh)", p.Name(), got)
		}
	}
}

func TestFixedOrderKnownValues(t *testing.T) {
	fo := FixedOrder{}
	// F(f=λ) = 1 - e^{-1} ≈ 0.63212.
	if got, want := fo.Freshness(2, 2), 1-math.Exp(-1); math.Abs(got-want) > 1e-12 {
		t.Errorf("F(2,2) = %v, want %v", got, want)
	}
	// F(f, λ) with r = λ/f = 2: (1 - e^{-2})/2.
	if got, want := fo.Freshness(1, 2), (1-math.Exp(-2))/2; math.Abs(got-want) > 1e-12 {
		t.Errorf("F(1,2) = %v, want %v", got, want)
	}
	// Very high frequency: freshness approaches 1 - r/2.
	if got, want := fo.Freshness(1e9, 1), 1-0.5e-9; math.Abs(got-want) > 1e-12 {
		t.Errorf("F(1e9,1) = %v, want %v", got, want)
	}
}

func TestPoissonOrderKnownValues(t *testing.T) {
	po := PoissonOrder{}
	if got := po.Freshness(1, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("F(1,1) = %v, want 0.5", got)
	}
	if got := po.Freshness(3, 1); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("F(3,1) = %v, want 0.75", got)
	}
}

func TestFixedOrderDominatesPoissonOrder(t *testing.T) {
	// Cho & Garcia-Molina: Fixed-Order freshness beats Poisson-Order
	// for every positive frequency and change rate.
	fo, po := FixedOrder{}, PoissonOrder{}
	for _, f := range []float64{0.1, 0.5, 1, 2, 5, 20} {
		for _, l := range []float64{0.1, 1, 3, 10} {
			if fo.Freshness(f, l) <= po.Freshness(f, l) {
				t.Errorf("F_fixed(%v,%v)=%v <= F_poisson=%v", f, l,
					fo.Freshness(f, l), po.Freshness(f, l))
			}
		}
	}
}

func TestFreshnessPropertyBoundsAndMonotone(t *testing.T) {
	for _, p := range policies {
		p := p
		f := func(rawF, rawL uint16) bool {
			freq := float64(rawF) / 100
			lambda := float64(rawL)/100 + 0.001
			v := p.Freshness(freq, lambda)
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			// Increasing in f.
			if p.Freshness(freq+0.5, lambda) < v-1e-12 {
				return false
			}
			// Decreasing in lambda.
			if freq > 0 && p.Freshness(freq, lambda+0.5) > v+1e-12 {
				return false
			}
			return true
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
	}
}

func TestMarginalMatchesFiniteDifference(t *testing.T) {
	for _, p := range policies {
		for _, freq := range []float64{0.2, 0.7, 1, 2.5, 10, 100} {
			for _, lambda := range []float64{0.3, 1, 4, 9} {
				h := 1e-6 * freq
				fd := (p.Freshness(freq+h, lambda) - p.Freshness(freq-h, lambda)) / (2 * h)
				an := p.Marginal(freq, lambda)
				if math.Abs(fd-an) > 1e-5*(math.Abs(an)+1e-9)+1e-9 {
					t.Errorf("%s: marginal(%v,%v) analytic %v vs finite-diff %v",
						p.Name(), freq, lambda, an, fd)
				}
			}
		}
	}
}

func TestMarginalLimits(t *testing.T) {
	fo := FixedOrder{}
	// At f -> 0+ the marginal is 1/λ.
	if got := fo.Marginal(0, 4); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("Marginal(0, 4) = %v, want 0.25", got)
	}
	// Marginal of an unchanging element is 0.
	if got := fo.Marginal(1, 0); got != 0 {
		t.Errorf("Marginal(1, 0) = %v, want 0", got)
	}
	// Monotone non-increasing in f.
	prev := math.Inf(1)
	for _, f := range []float64{0.01, 0.1, 0.5, 1, 2, 10, 1e3} {
		m := fo.Marginal(f, 2)
		if m > prev+1e-15 {
			t.Fatalf("marginal increased at f=%v", f)
		}
		prev = m
	}
}

func TestInvertMarginalRoundTrip(t *testing.T) {
	for _, p := range policies {
		for _, lambda := range []float64{0.2, 1, 3, 8} {
			for _, freq := range []float64{0.05, 0.3, 1, 4, 25} {
				target := p.Marginal(freq, lambda)
				if target <= 0 || target*lambda > 1-1e-9 {
					// Skip the numerically saturated region where the
					// marginal equals its f->0 limit to machine
					// precision; InvertMarginal documents it as
					// unrecoverable (returns 0) and the water-filling
					// solver never queries it there.
					continue
				}
				got := p.InvertMarginal(target, lambda)
				if math.Abs(got-freq) > 1e-6*freq+1e-8 {
					t.Errorf("%s λ=%v: InvertMarginal(Marginal(%v)) = %v",
						p.Name(), lambda, freq, got)
				}
			}
		}
	}
}

func TestInvertMarginalUnreachableTarget(t *testing.T) {
	for _, p := range policies {
		// The marginal never exceeds Marginal(0, λ) = 1/λ; asking for
		// more must return 0 (the element gets no bandwidth).
		if got := p.InvertMarginal(10, 1); got != 0 {
			t.Errorf("%s: InvertMarginal(10, 1) = %v, want 0", p.Name(), got)
		}
		if got := p.InvertMarginal(0.5, 0); got != 0 {
			t.Errorf("%s: λ=0 must get no bandwidth, got %v", p.Name(), got)
		}
		if got := p.InvertMarginal(0, 1); got != 0 {
			t.Errorf("%s: non-positive target must return 0, got %v", p.Name(), got)
		}
	}
}

func TestInvertMarginalPropertyRoundTrip(t *testing.T) {
	fo := FixedOrder{}
	f := func(rawF, rawL uint16) bool {
		freq := float64(rawF%5000)/100 + 0.01
		lambda := float64(rawL%2000)/100 + 0.01
		target := fo.Marginal(freq, lambda)
		if target*lambda > 1-1e-9 { // numerically saturated, see above
			return true
		}
		got := fo.InvertMarginal(target, lambda)
		return math.Abs(got-freq) <= 1e-6*freq+1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFixedOrderGSeriesBranch(t *testing.T) {
	// The small-r series branch must agree with the direct formula at
	// the switchover point.
	r := 1e-4
	direct := 1 - math.Exp(-r)*(1+r)
	series := r * r * (0.5 - r/3)
	if math.Abs(direct-series) > 1e-16 {
		t.Errorf("series %v vs direct %v at r=%v", series, direct, r)
	}
}
