package freshness

import (
	"fmt"
	"math"
)

// Element is one local copy in the mirror. Lambda is the element's
// change rate at the source (updates per period, Poisson), AccessProb
// its share of the aggregate user profile, and Size its transfer cost
// in bandwidth units (1.0 for the paper's fixed-size sections).
type Element struct {
	ID         int
	Lambda     float64
	AccessProb float64
	Size       float64
}

// Validate reports whether the element's parameters are usable.
func (e Element) Validate() error {
	if e.Lambda < 0 || math.IsNaN(e.Lambda) || math.IsInf(e.Lambda, 0) {
		return fmt.Errorf("freshness: element %d has invalid change rate %v", e.ID, e.Lambda)
	}
	if e.AccessProb < 0 || math.IsNaN(e.AccessProb) || math.IsInf(e.AccessProb, 0) {
		return fmt.Errorf("freshness: element %d has invalid access probability %v", e.ID, e.AccessProb)
	}
	if !(e.Size > 0) || math.IsNaN(e.Size) || math.IsInf(e.Size, 0) {
		return fmt.Errorf("freshness: element %d has invalid size %v", e.ID, e.Size)
	}
	return nil
}

// ValidateElements checks a whole mirror: every element valid and the
// access probabilities forming a (sub-)distribution. The probabilities
// need not sum exactly to 1 — partition representatives carry scaled
// masses — but they must be non-negative and finite, which Validate
// covers per element.
func ValidateElements(elems []Element) error {
	if len(elems) == 0 {
		return fmt.Errorf("freshness: mirror has no elements")
	}
	for _, e := range elems {
		if err := e.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// TotalAccessProb returns the summed access probability of the mirror.
func TotalAccessProb(elems []Element) float64 {
	var s float64
	for _, e := range elems {
		s += e.AccessProb
	}
	return s
}

// TotalSize returns the summed element size.
func TotalSize(elems []Element) float64 {
	var s float64
	for _, e := range elems {
		s += e.Size
	}
	return s
}

// UniformProfile overwrites every element's access probability with
// 1/N, the profile under which perceived freshness degenerates to the
// average freshness optimized by Cho & Garcia-Molina.
func UniformProfile(elems []Element) {
	if len(elems) == 0 {
		return
	}
	p := 1 / float64(len(elems))
	for i := range elems {
		elems[i].AccessProb = p
	}
}
