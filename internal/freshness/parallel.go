package freshness

import (
	"runtime"
	"sync"
)

// parallelThreshold is the element count below which metric reductions
// stay on the calling goroutine: under it, goroutine hand-off costs
// more than the arithmetic saved.
const parallelThreshold = 16384

// reduceShards evaluates fn over contiguous index shards of [0, n) —
// in parallel when n is large enough — and returns the shard sums
// added in shard order. The fixed chunking and ordered reduction make
// the result deterministic for a given n and GOMAXPROCS regardless of
// goroutine scheduling.
func reduceShards(n int, fn func(lo, hi int) float64) float64 {
	workers := runtime.GOMAXPROCS(0)
	if n < parallelThreshold || workers < 2 {
		return fn(0, n)
	}
	partial := make([]float64, workers)
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			partial[w] = fn(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	var total float64
	for _, t := range partial {
		total += t
	}
	return total
}
