// External test package: testkit imports freshness, so wiring the
// shared invariant suite into this package's tests must happen from
// outside to avoid an import cycle.
package freshness_test

import (
	"math"
	"testing"

	"freshen/internal/freshness"
	"freshen/internal/testkit"
)

// TestPolicyInvariantsSuite runs the testkit's full analytic contract
// — boundaries, monotone concave freshness, marginal consistency with
// the derivative, inversion round-trips warm and cold — over change
// rates spanning eighteen orders of magnitude.
func TestPolicyInvariantsSuite(t *testing.T) {
	lambdas := []float64{1e-9, 1e-4, 0.5, 1, 8, 1e3, 1e9}
	testkit.AssertPolicyInvariants(t, freshness.FixedOrder{}, lambdas)
	testkit.AssertPolicyInvariants(t, freshness.PoissonOrder{}, lambdas)
}

// TestInverterHostileSeedRegression pins the two fuzzer-found defects
// in the Fixed-Order marginal inversion (corpus entries
// testdata/fuzz/FuzzWaterFill/{5e110c4e965dcd92,0a643117b21e9cd6} in
// internal/solver):
//
//  1. a warm hint tens of orders of magnitude from the root demoted
//     Newton to arithmetic bisection across the whole span, exhausting
//     the iteration budget and returning a root off by percents;
//  2. with the seed within one ulp of the root, the sub-ulp Newton
//     step rounded to no movement, was misread as leaving the bracket,
//     and the safeguard flung the iterate to r=2 — ~80 halvings from a
//     root near 1e-24.
//
// Both surfaced as the water-filling solver overspending its budget by
// ~1% on single-element mirrors with extreme λ/size ratios.
func TestInverterHostileSeedRegression(t *testing.T) {
	pol := freshness.FixedOrder{}
	cases := []struct {
		lambda, freq float64
	}{
		{1.8332349474248444e-07, 7.746899528472528e+15},
		{1.03082227567708e-09, 1.1101075304834724e+15},
		{1, 1e12},
		{2.5, 3},
	}
	for _, tc := range cases {
		target := pol.Marginal(tc.freq, tc.lambda)
		root := tc.lambda / tc.freq
		hints := []float64{0, root, 1.86 * root, root / 16, 40.055, 2, 1e-300, 1e300, math.Inf(1)}
		for _, hint := range hints {
			got, _ := pol.InvertMarginalWarm(target, tc.lambda, hint)
			if math.Abs(got-tc.freq) > 1e-9*tc.freq {
				t.Errorf("λ=%g f=%g hint=%g: inversion returned %g (rel err %g)",
					tc.lambda, tc.freq, hint, got, got/tc.freq-1)
			}
		}
	}
}
