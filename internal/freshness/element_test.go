package freshness

import (
	"math"
	"testing"
)

func TestElementValidate(t *testing.T) {
	good := Element{ID: 1, Lambda: 2, AccessProb: 0.1, Size: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid element rejected: %v", err)
	}
	bad := []Element{
		{Lambda: -1, AccessProb: 0.1, Size: 1},
		{Lambda: math.NaN(), AccessProb: 0.1, Size: 1},
		{Lambda: 1, AccessProb: -0.1, Size: 1},
		{Lambda: 1, AccessProb: math.Inf(1), Size: 1},
		{Lambda: 1, AccessProb: 0.1, Size: 0},
		{Lambda: 1, AccessProb: 0.1, Size: -2},
		{Lambda: 1, AccessProb: 0.1, Size: math.NaN()},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("bad element %d accepted: %+v", i, e)
		}
	}
}

func TestValidateElements(t *testing.T) {
	if err := ValidateElements(nil); err == nil {
		t.Error("empty mirror must be rejected")
	}
	elems := []Element{
		{ID: 0, Lambda: 1, AccessProb: 0.5, Size: 1},
		{ID: 1, Lambda: 2, AccessProb: 0.5, Size: 1},
	}
	if err := ValidateElements(elems); err != nil {
		t.Errorf("valid mirror rejected: %v", err)
	}
	elems[1].Size = 0
	if err := ValidateElements(elems); err == nil {
		t.Error("mirror with invalid element accepted")
	}
}

func TestTotals(t *testing.T) {
	elems := []Element{
		{Lambda: 1, AccessProb: 0.25, Size: 2},
		{Lambda: 2, AccessProb: 0.75, Size: 3},
	}
	if got := TotalAccessProb(elems); got != 1 {
		t.Errorf("TotalAccessProb = %v, want 1", got)
	}
	if got := TotalSize(elems); got != 5 {
		t.Errorf("TotalSize = %v, want 5", got)
	}
}

func TestUniformProfile(t *testing.T) {
	elems := []Element{{AccessProb: 0.9, Size: 1}, {AccessProb: 0.1, Size: 1}, {Size: 1}, {Size: 1}}
	UniformProfile(elems)
	for i, e := range elems {
		if e.AccessProb != 0.25 {
			t.Errorf("element %d access prob %v, want 0.25", i, e.AccessProb)
		}
	}
	UniformProfile(nil) // must not panic
}
