package freshness

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

func TestPolicyNames(t *testing.T) {
	if got := (FixedOrder{}).Name(); got != "fixed-order" {
		t.Errorf("FixedOrder.Name() = %q", got)
	}
	if got := (PoissonOrder{}).Name(); got != "poisson-order" {
		t.Errorf("PoissonOrder.Name() = %q", got)
	}
}

// TestWarmInversionNearCutoff exercises the catastrophic-cancellation
// branch of the Fixed-Order warm inversion: targets within 1e-9 of the
// peak marginal 1/λ, where g(r) rounds to 1.0 and the fixed-point
// iteration on δ = 1 − target·λ takes over. The round-trip must hold
// down to δ near the smallest subnormal, from cold and hostile hints
// alike.
func TestWarmInversionNearCutoff(t *testing.T) {
	pol := FixedOrder{}
	for _, lambda := range []float64{1e-3, 1, 42} {
		for _, r := range []float64{25, 40, 80, 300, 700} {
			f := lambda / r
			target := pol.Marginal(f, lambda)
			peak := pol.Marginal(0, lambda)
			if target >= peak {
				// δ underflowed to zero for this (λ, r); the documented
				// contract (invert to 0) is covered elsewhere.
				continue
			}
			for _, hint := range []float64{0, r, r / 4, 6 * r, 1e-9, 1e9} {
				got, rOut := pol.InvertMarginalWarm(target, lambda, hint)
				// This close to the cutoff the inversion is
				// ill-conditioned in f — rounding target to float64
				// already moves the root by ~δ's quantization error —
				// so exactness is asserted in value space (the solver's
				// contract: the returned frequency attains the target)
				// with only a loose sanity bound on f itself.
				if m := pol.Marginal(got, lambda); math.Abs(m-target) > 4e-16*target {
					t.Errorf("λ=%v r=%v hint=%v: M(inverted) = %v, want %v", lambda, r, hint, m, target)
				}
				if math.Abs(got-f) > 0.02*f {
					t.Errorf("λ=%v r=%v hint=%v: inverted to %v, want ≈%v", lambda, r, hint, got, f)
				}
				if rOut > 0 && math.Abs(rOut-lambda/got) > 1e-9*rOut {
					t.Errorf("λ=%v r=%v hint=%v: returned hint %v inconsistent with f=%v", lambda, r, hint, rOut, got)
				}
			}
		}
	}
	// At or above the peak no positive frequency attains the target.
	if got, _ := pol.InvertMarginalWarm(1.0, 1, 0); got != 0 {
		t.Errorf("target at the peak inverted to %v, want 0", got)
	}
}

// TestMetricsParallelReduction pushes the metric reductions past the
// parallel threshold and checks the sharded sums against a plain
// serial loop: parallelism must change nothing but speed.
func TestMetricsParallelReduction(t *testing.T) {
	// reduceShards stays serial below two workers; force the sharded
	// path even on single-core CI machines.
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	n := parallelThreshold + 1234
	rng := rand.New(rand.NewSource(7))
	elems := make([]Element, n)
	freqs := make([]float64, n)
	for i := range elems {
		elems[i] = Element{
			ID:         i,
			Lambda:     math.Exp(rng.Float64()*8 - 4),
			AccessProb: rng.Float64() / float64(n),
			Size:       math.Exp(rng.Float64() * 3),
		}
		freqs[i] = math.Exp(rng.Float64()*6 - 3)
	}
	pol := FixedOrder{}

	var wantPF, wantAvg, wantBW float64
	for i, e := range elems {
		wantPF += e.AccessProb * pol.Freshness(freqs[i], e.Lambda)
		wantAvg += pol.Freshness(freqs[i], e.Lambda)
		wantBW += e.Size * freqs[i]
	}
	wantAvg /= float64(n)

	pf, err := Perceived(pol, elems, freqs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pf-wantPF) > 1e-9*(1+wantPF) {
		t.Errorf("parallel Perceived = %v, serial %v", pf, wantPF)
	}
	avg, err := Average(pol, elems, freqs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(avg-wantAvg) > 1e-9*(1+wantAvg) {
		t.Errorf("parallel Average = %v, serial %v", avg, wantAvg)
	}
	bw, err := BandwidthUsed(elems, freqs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bw-wantBW) > 1e-9*(1+wantBW) {
		t.Errorf("parallel BandwidthUsed = %v, serial %v", bw, wantBW)
	}

	// Determinism: the fixed chunking must make repeat runs bit-equal.
	again, err := Perceived(pol, elems, freqs)
	if err != nil {
		t.Fatal(err)
	}
	if again != pf {
		t.Errorf("parallel Perceived not deterministic: %v then %v", pf, again)
	}
}
