// Package freshness implements the paper's data model and freshness
// mathematics: elements with Poisson change rates, access probabilities
// and sizes; the Cho–Garcia-Molina time-averaged freshness closed form
// for the Fixed-Order synchronization policy and its derivative; the
// Poisson-order (random) policy used for ablations; and the aggregate
// metrics — average freshness and the paper's perceived freshness.
package freshness
