package freshness

import (
	"math"
	"testing"
)

// TestFixedOrderAgeMarginal checks −∂Ā/∂f against a central finite
// difference of Ā and its qualitative contract: positive, decreasing
// in f (Ā is convex), divergent as f → 0, zero for unchanging
// elements.
func TestFixedOrderAgeMarginal(t *testing.T) {
	if m := FixedOrderAgeMarginal(3, 0); m != 0 {
		t.Errorf("unchanging element marginal %v, want 0", m)
	}
	if m := FixedOrderAgeMarginal(0, 2); !math.IsInf(m, 1) {
		t.Errorf("f=0 marginal %v, want +Inf", m)
	}
	for _, lambda := range []float64{1e-4, 0.3, 1, 7, 1e3} {
		prev := math.Inf(1)
		for _, f := range []float64{lambda / 32, lambda / 4, lambda, 4 * lambda, 32 * lambda, 3e4 * lambda} {
			m := FixedOrderAgeMarginal(f, lambda)
			if m <= 0 || m >= prev {
				t.Errorf("λ=%v f=%v: marginal %v not positive decreasing (prev %v)", lambda, f, m, prev)
			}
			h := f * 1e-5
			fd := (FixedOrderAge(f-h, lambda) - FixedOrderAge(f+h, lambda)) / (2 * h)
			if math.Abs(fd-m) > 1e-3*m {
				t.Errorf("λ=%v f=%v: marginal %v but −dĀ/df ≈ %v", lambda, f, m, fd)
			}
			prev = m
		}
	}
}

// TestFixedOrderKShape pins the dimensionless factor k(r): zero at
// r ≤ 0, increasing, approaching 1/2, and continuous across the
// series switchover at r = 1e-4.
func TestFixedOrderKShape(t *testing.T) {
	if k := fixedOrderK(0); k != 0 {
		t.Errorf("k(0) = %v, want 0", k)
	}
	if k := fixedOrderK(-3); k != 0 {
		t.Errorf("k(-3) = %v, want 0", k)
	}
	prev := 0.0
	for _, r := range []float64{1e-8, 1e-5, 9.9e-5, 1.01e-4, 1e-3, 0.1, 1, 5, 40} {
		k := fixedOrderK(r)
		if k <= prev || k >= 0.5 {
			t.Errorf("k(%v) = %v not increasing within (0, 1/2) (prev %v)", r, k, prev)
		}
		prev = k
	}
	// k → 1/2 like 1/r², so pick r large enough that the gap vanishes.
	if k := fixedOrderK(1e8); math.Abs(k-0.5) > 1e-10 {
		t.Errorf("k(1e8) = %v, want → 1/2", k)
	}
	// At the switchover the direct form has already lost ~4 digits to
	// the (1−e^(−r))/r² cancellation — which is why the series branch
	// exists — so continuity is asserted only to the digits it retains.
	below, above := fixedOrderK(1e-4*(1-1e-9)), fixedOrderK(1e-4*(1+1e-9))
	if math.Abs(below-above) > 5e-4*above {
		t.Errorf("series switchover discontinuity: %v vs %v", below, above)
	}
}

// TestInvertFixedOrderAgeMarginal round-trips the inversion cold and
// warm — including hints on the wrong side of the root — and pins the
// degenerate targets to 0.
func TestInvertFixedOrderAgeMarginal(t *testing.T) {
	for _, lambda := range []float64{1e-3, 0.5, 2, 500} {
		for _, f := range []float64{lambda / 16, lambda / 2, lambda, 8 * lambda, 100 * lambda} {
			target := FixedOrderAgeMarginal(f, lambda)
			for _, hint := range []float64{0, f, f / 3, 5 * f, 1e12, math.Inf(1)} {
				got := InvertFixedOrderAgeMarginalWarm(target, lambda, hint)
				if math.Abs(got-f) > 1e-6*f {
					t.Errorf("λ=%v f=%v hint=%v: inversion returned %v", lambda, f, hint, got)
				}
			}
			if got := InvertFixedOrderAgeMarginal(target, lambda); math.Abs(got-f) > 1e-6*f {
				t.Errorf("λ=%v f=%v: cold inversion returned %v", lambda, f, got)
			}
		}
	}
	for _, tc := range []struct{ target, lambda float64 }{
		{0, 1}, {-2, 1}, {math.Inf(1), 1}, {0.5, 0}, {0.5, -1},
	} {
		if got := InvertFixedOrderAgeMarginal(tc.target, tc.lambda); got != 0 {
			t.Errorf("degenerate (target=%v, λ=%v) inverted to %v, want 0", tc.target, tc.lambda, got)
		}
	}
}
