package freshness

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFixedOrderAgeBoundaries(t *testing.T) {
	if got := FixedOrderAge(1, 0); got != 0 {
		t.Errorf("age of unchanging element = %v, want 0", got)
	}
	if got := FixedOrderAge(0, 2); !math.IsInf(got, 1) {
		t.Errorf("age of unrefreshed changing element = %v, want +Inf", got)
	}
}

func TestFixedOrderAgeMatchesNumericIntegration(t *testing.T) {
	// Integrate E[age at offset s] = s − (1 − e^{−λs})/λ over one
	// refresh interval numerically and compare with the closed form.
	for _, freq := range []float64{0.25, 1, 3, 10} {
		for _, lambda := range []float64{0.2, 1, 2.5, 8} {
			interval := 1 / freq
			const steps = 200000
			var sum float64
			for i := 0; i < steps; i++ {
				s := (float64(i) + 0.5) * interval / steps
				sum += s - (1-math.Exp(-lambda*s))/lambda
			}
			numeric := sum / steps
			closed := FixedOrderAge(freq, lambda)
			if math.Abs(numeric-closed) > 1e-6*(numeric+1e-12) {
				t.Errorf("f=%v λ=%v: closed %v vs numeric %v", freq, lambda, closed, numeric)
			}
		}
	}
}

func TestFixedOrderAgeSeriesBranch(t *testing.T) {
	// The small-r series must agree with the direct formula at the
	// switchover.
	freq, lambda := 100000.0, 10.0 // r = 1e-4
	r := lambda / freq
	direct := (0.5 - 1/r - math.Expm1(-r)/(r*r)) / freq
	series := (r/6 - r*r/24) / freq
	// The direct form cancels ~8 digits at this r (0.5 − 10⁴ + …),
	// which is why the series branch exists; they agree to the digits
	// the direct form retains.
	if math.Abs(direct-series) > 1e-6*series {
		t.Errorf("series %v vs direct %v", series, direct)
	}
}

func TestFixedOrderAgeMonotone(t *testing.T) {
	// Age decreases in f and increases in λ.
	f := func(rawF, rawL uint16) bool {
		freq := float64(rawF%2000)/100 + 0.05
		lambda := float64(rawL%2000)/100 + 0.05
		a := FixedOrderAge(freq, lambda)
		if a < 0 || math.IsNaN(a) {
			return false
		}
		if FixedOrderAge(freq*1.5, lambda) > a+1e-12 {
			return false
		}
		return FixedOrderAge(freq, lambda*1.5) >= a-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPerceivedAge(t *testing.T) {
	elems := []Element{
		{Lambda: 2, AccessProb: 0.5, Size: 1},
		{Lambda: 2, AccessProb: 0.5, Size: 1},
	}
	a, err := PerceivedAge(elems, []float64{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if want := FixedOrderAge(4, 2); math.Abs(a-want) > 1e-12 {
		t.Errorf("PerceivedAge = %v, want %v", a, want)
	}
	// Unaccessed stale elements do not contribute, even with age +Inf.
	elems[1].AccessProb = 0
	elems[0].AccessProb = 1
	a, err = PerceivedAge(elems, []float64{4, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(a, 0) {
		t.Errorf("unaccessed infinite-age element leaked into PerceivedAge: %v", a)
	}
	if _, err := PerceivedAge(elems, []float64{1}); err == nil {
		t.Error("length mismatch must fail")
	}
}

func TestPerceivedAgeVsFreshnessTradeoff(t *testing.T) {
	// More bandwidth lowers perceived age just as it raises perceived
	// freshness.
	elems := []Element{{Lambda: 3, AccessProb: 1, Size: 1}}
	prev := math.Inf(1)
	for _, f := range []float64{0.5, 1, 2, 4, 8} {
		a, err := PerceivedAge(elems, []float64{f})
		if err != nil {
			t.Fatal(err)
		}
		if a >= prev {
			t.Errorf("age %v did not fall at f=%v (prev %v)", a, f, prev)
		}
		prev = a
	}
}
