package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_requests_total", "Requests served.").Add(3)
	r.Gauge("test_temperature", "Current temperature.").Set(-1.5)
	r.GaugeFunc("test_clock", "A computed gauge.", func() float64 { return 42 })
	r.CounterVec("test_by_route_total", "Per-route requests.", "route", "code").
		With("/object", "200").Add(2)
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_requests_total Requests served.\n",
		"# TYPE test_requests_total counter\n",
		"test_requests_total 3\n",
		"# TYPE test_temperature gauge\n",
		"test_temperature -1.5\n",
		"# TYPE test_clock gauge\n",
		"test_clock 42\n",
		`test_by_route_total{route="/object",code="200"} 2` + "\n",
		"# TYPE test_latency_seconds histogram\n",
		`test_latency_seconds_bucket{le="0.1"} 1` + "\n",
		`test_latency_seconds_bucket{le="1"} 2` + "\n",
		`test_latency_seconds_bucket{le="+Inf"} 3` + "\n",
		"test_latency_seconds_sum 5.55\n",
		"test_latency_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q; got:\n%s", want, out)
		}
	}
	// Families must be sorted by name.
	if strings.Index(out, "test_by_route_total") > strings.Index(out, "test_clock") {
		t.Error("families not sorted by name")
	}
}

func TestRegistryRoundTripsThroughParser(t *testing.T) {
	r := NewRegistry()
	r.Counter("rt_total", "").Add(7)
	r.GaugeVec("rt_state", "", "kind").With(`we"ird\value` + "\n").Set(2)
	hv := r.HistogramVec("rt_seconds", "", []float64{1, 2}, "outcome")
	hv.With("success").Observe(1.5)

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	e, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if e.BadLines != 0 {
		t.Errorf("%d bad lines round-tripping own exposition", e.BadLines)
	}
	if v, ok := e.Value("rt_total"); !ok || v != 7 {
		t.Errorf("rt_total = %v, %v", v, ok)
	}
	if v, ok := e.Value("rt_state", "kind", `we"ird\value`+"\n"); !ok || v != 2 {
		t.Errorf("escaped label round trip failed: %v, %v", v, ok)
	}
	if v, ok := e.Value("rt_seconds_bucket", "outcome", "success", "le", "2"); !ok || v != 1 {
		t.Errorf("histogram bucket = %v, %v", v, ok)
	}
	if e.Types["rt_seconds"] != "histogram" {
		t.Errorf("TYPE for rt_seconds = %q", e.Types["rt_seconds"])
	}
	fams := e.Families()
	want := []string{"rt_seconds", "rt_state", "rt_total"}
	if len(fams) != len(want) {
		t.Fatalf("families = %v, want %v", fams, want)
	}
	for i := range want {
		if fams[i] != want[i] {
			t.Fatalf("families = %v, want %v", fams, want)
		}
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "")
	b := r.Counter("same_total", "")
	if a != b {
		t.Error("re-registering the same counter returned a new instance")
	}
	v := r.CounterVec("vec_total", "", "k")
	if v.With("x") != v.With("x") {
		t.Error("same label values returned different children")
	}
	if v.With("x") == v.With("y") {
		t.Error("different label values shared a child")
	}
}

func TestRegistrySchemaMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash_total", "")
	for _, reg := range []func(){
		func() { r.Gauge("clash_total", "") },
		func() { r.CounterVec("clash_total", "", "k") },
		func() { r.Counter("", "") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("schema mismatch did not panic")
				}
			}()
			reg()
		}()
	}
}

func TestRegistryVecCardinalityPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("card_total", "", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("wrong label cardinality did not panic")
		}
	}()
	v.With("only-one")
}

func TestRegistryHandlerContract(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	e, err := ParseExposition(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := e.Value("h_total"); !ok || v != 1 {
		t.Errorf("h_total = %v, %v", v, ok)
	}

	post, err := http.Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics = %d, want 405", post.StatusCode)
	}
}

func TestTypeLinesPresentBeforeFirstChild(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("lazy_total", "Never incremented.", "k")
	var b strings.Builder
	r.WriteTo(&b)
	if !strings.Contains(b.String(), "# TYPE lazy_total counter") {
		t.Errorf("childless family missing from exposition:\n%s", b.String())
	}
}

func TestDescribe(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "")
	r.HistogramVec("a_seconds", "", []float64{1}, "outcome")
	d := r.Describe()
	if len(d) != 2 || d[0].Name != "a_seconds" || d[1].Name != "b_total" {
		t.Fatalf("Describe = %+v", d)
	}
	if d[0].Type != "histogram" || len(d[0].Labels) != 1 || d[0].Labels[0] != "outcome" {
		t.Errorf("a_seconds desc = %+v", d[0])
	}
}
