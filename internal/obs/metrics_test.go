package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter = %v", c.Value())
	}
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter = %v, want 3.5", got)
	}
	c.Add(-1)
	c.Add(math.NaN())
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter moved on invalid delta: %v", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Errorf("gauge = %v, want 2.5", got)
	}
	g.Set(-7)
	if got := g.Value(); got != -7 {
		t.Errorf("gauge = %v, want -7", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	const workers, perWorker = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %v, want %d", got, workers*perWorker)
	}
}

func TestHistogramObserve(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500, math.NaN()} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Errorf("count = %d, want 5 (NaN must be ignored)", got)
	}
	if got := h.Sum(); got != 556.5 {
		t.Errorf("sum = %v, want 556.5", got)
	}
	cum, total := h.snapshot()
	// Cumulative: le=1 -> 2 (0.5 and the boundary value 1), le=10 -> 3,
	// le=100 -> 4, +Inf -> 5.
	want := []uint64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("cum[%d] = %d, want %d", i, cum[i], w)
		}
	}
	if total != 5 {
		t.Errorf("total = %d, want 5", total)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
	for _, fn := range []func() []float64{LatencyBuckets, CountBuckets} {
		bs := fn()
		for i := 1; i < len(bs); i++ {
			if bs[i] <= bs[i-1] {
				t.Fatalf("default buckets not ascending: %v", bs)
			}
		}
	}
}

func TestExpBucketsPanics(t *testing.T) {
	for _, tc := range []struct{ start, factor float64 }{{0, 2}, {1, 1}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ExpBuckets(%v, %v, 4) did not panic", tc.start, tc.factor)
				}
			}()
			ExpBuckets(tc.start, tc.factor, 4)
		}()
	}
}
