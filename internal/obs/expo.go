package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition sample.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns one label's value ("" when absent).
func (s Sample) Label(name string) string { return s.Labels[name] }

// Exposition is a parsed scrape: samples in document order plus the
// schema comments.
type Exposition struct {
	Samples []Sample
	// Types maps family name -> declared type, from # TYPE lines.
	Types map[string]string
	// BadLines counts lines that could not be parsed and were skipped.
	BadLines int
}

// Value returns the first sample matching name and the given
// label-value constraints (pairs of key, value), and whether one
// exists.
func (e *Exposition) Value(name string, constraints ...string) (float64, bool) {
	for _, s := range e.Samples {
		if s.Name != name {
			continue
		}
		ok := true
		for i := 0; i+1 < len(constraints); i += 2 {
			if s.Labels[constraints[i]] != constraints[i+1] {
				ok = false
				break
			}
		}
		if ok {
			return s.Value, true
		}
	}
	return 0, false
}

// Families returns the distinct family names present (bucket/sum/
// count suffixes folded into their histogram's name when the TYPE is
// known), sorted.
func (e *Exposition) Families() []string {
	seen := make(map[string]bool)
	for _, s := range e.Samples {
		seen[e.familyOf(s.Name)] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// familyOf maps a sample name to its family, folding histogram
// series suffixes.
func (e *Exposition) familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base := strings.TrimSuffix(name, suf); base != name && e.Types[base] == "histogram" {
			return base
		}
	}
	return name
}

// HistogramQuantile estimates quantile q (in [0, 1]) for the named
// histogram restricted by the label constraints, interpolating
// linearly inside the bucket the quantile falls in (zero lower bound
// for the first bucket, the last finite bound for the +Inf bucket).
// It returns false when the histogram is absent or empty.
func (e *Exposition) HistogramQuantile(name string, q float64, constraints ...string) (float64, bool) {
	type bucket struct {
		upper string
		count float64
	}
	var buckets []bucket
	for _, s := range e.Samples {
		if s.Name != name+"_bucket" {
			continue
		}
		ok := true
		for i := 0; i+1 < len(constraints); i += 2 {
			if s.Labels[constraints[i]] != constraints[i+1] {
				ok = false
				break
			}
		}
		if ok {
			buckets = append(buckets, bucket{upper: s.Labels["le"], count: s.Value})
		}
	}
	if len(buckets) == 0 {
		return 0, false
	}
	// Buckets arrive in exposition order: ascending le, +Inf last.
	total := buckets[len(buckets)-1].count
	if total == 0 {
		return 0, false
	}
	rank := q * total
	lower, prev := 0.0, 0.0
	for _, b := range buckets {
		upper, err := strconv.ParseFloat(b.upper, 64)
		if b.upper == "+Inf" || err != nil {
			return lower, true // the quantile is past every finite bound
		}
		if b.count >= rank {
			frac := 1.0
			if width := b.count - prev; width > 0 {
				frac = (rank - prev) / width
			}
			return lower + frac*(upper-lower), true
		}
		lower, prev = upper, b.count
	}
	return lower, true
}

// ParseExposition parses Prometheus text-format exposition
// tolerantly: unparseable lines are counted in BadLines and skipped
// rather than failing the scrape — one mangled series must not blind
// a monitoring loop to the rest. It fails only when the input yields
// no samples at all (and is not simply empty of metrics).
func ParseExposition(r io.Reader) (*Exposition, error) {
	e := &Exposition{Types: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lines := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		lines++
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				e.Types[fields[2]] = fields[3]
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			e.BadLines++
			continue
		}
		e.Samples = append(e.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading exposition: %w", err)
	}
	if lines > 0 && len(e.Samples) == 0 && len(e.Types) == 0 {
		return nil, fmt.Errorf("obs: exposition contained no parseable samples (%d bad lines)", e.BadLines)
	}
	return e, nil
}

// parseSampleLine parses `name{k="v",...} value [timestamp]`.
func parseSampleLine(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ \t"); i < 0 {
		return s, fmt.Errorf("no value")
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if s.Name == "" {
		return s, fmt.Errorf("empty name")
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.LastIndex(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set")
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return s, fmt.Errorf("no value")
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q", fields[0])
	}
	s.Value = v
	return s, nil
}

// parseLabels parses `k="v",k2="v2"` into out, unescaping values.
func parseLabels(s string, out map[string]string) error {
	for s = strings.TrimSpace(s); s != ""; s = strings.TrimSpace(s) {
		eq := strings.Index(s, "=")
		if eq <= 0 {
			return fmt.Errorf("bad label pair %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		s = strings.TrimSpace(s[eq+1:])
		if !strings.HasPrefix(s, `"`) {
			return fmt.Errorf("unquoted label value for %q", key)
		}
		s = s[1:]
		var val strings.Builder
		i := 0
		for ; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(s) {
			return fmt.Errorf("unterminated label value for %q", key)
		}
		out[key] = val.String()
		s = s[i+1:]
		s = strings.TrimPrefix(strings.TrimSpace(s), ",")
	}
	return nil
}
