package obs

import (
	"log/slog"
	"strings"
	"testing"
)

func TestLoggerLevelsAndComponents(t *testing.T) {
	var b strings.Builder
	l := NewTestLogger(&b, slog.LevelInfo)
	m := Component(l, "mirror")
	m.Debug("hidden")
	m.Info("refresh done", "element", 3)
	out := b.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("debug line leaked at info level: %q", out)
	}
	for _, want := range []string{"component=mirror", "msg=\"refresh done\"", "element=3"} {
		if !strings.Contains(out, want) {
			t.Errorf("log line missing %q: %q", want, out)
		}
	}
}

func TestComponentNilParent(t *testing.T) {
	l := Component(nil, "solo")
	l.Error("must not panic or write anywhere visible")
}

func TestNopDiscardsEverything(t *testing.T) {
	l := Nop()
	if l.Enabled(nil, slog.LevelError) {
		t.Error("nop logger claims error level is enabled")
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"WARN": slog.LevelWarn, "warning": slog.LevelWarn, "error": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}
