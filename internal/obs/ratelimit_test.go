package obs

import (
	"sync"
	"testing"
	"time"
)

func TestLogLimiterCoalesces(t *testing.T) {
	l := NewLogLimiter(10 * time.Second)
	base := time.Unix(1000, 0)

	if emit, n := l.Allow(base); !emit || n != 0 {
		t.Fatalf("first occurrence: emit=%v suppressed=%d, want true/0", emit, n)
	}
	// Five repeats inside the interval: all suppressed.
	for i := 1; i <= 5; i++ {
		if emit, _ := l.Allow(base.Add(time.Duration(i) * time.Second)); emit {
			t.Fatalf("occurrence %d inside the interval emitted", i)
		}
	}
	// Past the interval: one line carrying the suppressed count.
	if emit, n := l.Allow(base.Add(11 * time.Second)); !emit || n != 5 {
		t.Fatalf("post-interval: emit=%v suppressed=%d, want true/5", emit, n)
	}
	// The counter reset with the emission.
	if emit, n := l.Allow(base.Add(30 * time.Second)); !emit || n != 0 {
		t.Fatalf("quiet period: emit=%v suppressed=%d, want true/0", emit, n)
	}
}

func TestLogLimiterDisabled(t *testing.T) {
	l := NewLogLimiter(0)
	base := time.Unix(1000, 0)
	for i := 0; i < 3; i++ {
		if emit, n := l.Allow(base); !emit || n != 0 {
			t.Fatalf("occurrence %d: emit=%v suppressed=%d, want every emission allowed", i, emit, n)
		}
	}
}

// TestLogLimiterConcurrent checks the accounting under contention:
// every occurrence is either emitted or counted suppressed, never
// lost. Run under -race this is the limiter's memory-model test.
func TestLogLimiterConcurrent(t *testing.T) {
	l := NewLogLimiter(time.Hour)
	base := time.Unix(1000, 0)
	const workers, perWorker = 8, 500

	var wg sync.WaitGroup
	var mu sync.Mutex
	emitted, reported := 0, 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if emit, n := l.Allow(base); emit {
					mu.Lock()
					emitted++
					reported += n
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	// Flush whatever is still pending.
	if emit, n := l.Allow(base.Add(2 * time.Hour)); emit {
		emitted++
		reported += n
	}
	if total := emitted + reported; total != workers*perWorker+1 {
		t.Errorf("emitted %d + suppressed-reported %d = %d, want %d occurrences accounted",
			emitted, reported, emitted+reported, workers*perWorker+1)
	}
}
