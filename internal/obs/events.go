package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// The repository's structured event log is log/slog with a thin
// convention layer: one process-wide levelled text logger, and one
// derived logger per component carrying a "component" attribute so
// events from the mirror, the persistence layer and the daemon
// harness can be filtered apart.

// NewLogger returns a levelled text logger writing to w. Timestamps
// are included; use NewTestLogger in tests for deterministic output.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// NewTestLogger returns a logger writing to w without timestamps, so
// tests can assert on complete lines.
func NewTestLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{
		Level: level,
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if a.Key == slog.TimeKey && len(groups) == 0 {
				return slog.Attr{}
			}
			return a
		},
	}))
}

// Nop returns a logger that discards everything — the default for
// library code whose caller didn't wire an event log.
func Nop() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{
		Level: slog.Level(127), // above every defined level
	}))
}

// Component derives a child logger tagged with the component name.
// A nil parent derives from the nop logger, so library code can call
// obs.Component(cfg.Logger, "...") without a nil check.
func Component(l *slog.Logger, name string) *slog.Logger {
	if l == nil {
		l = Nop()
	}
	return l.With("component", name)
}

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
	}
}
