package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// metricKind discriminates the registry's family types.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindCounterFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// family is one named metric with a fixed label schema and one child
// per label-value combination.
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64      // histograms only
	fn      func() float64 // gauge funcs only

	mu       sync.Mutex
	children map[string]any // label-value key -> *Counter | *Gauge | *Histogram
}

// labelKey joins label values into a child map key. The separator
// cannot appear in exposition output, and collisions only matter
// within one family, so a simple join suffices.
func labelKey(values []string) string { return strings.Join(values, "\x1f") }

// child returns (creating if needed) the family's child for the given
// label values.
func (f *family) child(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s has %d labels, got %d values", f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	var c any
	switch f.kind {
	case kindCounter:
		c = &Counter{}
	case kindGauge:
		c = &Gauge{}
	case kindHistogram:
		c = newHistogram(f.buckets)
	default:
		panic("obs: func-valued metrics have no children")
	}
	f.children[key] = c
	return c
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. Families are get-or-create: registering the
// same name twice returns the existing family, provided the type and
// label schema match (a mismatch panics — it is a wiring bug, not a
// runtime condition).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register get-or-creates a family, enforcing schema consistency.
func (r *Registry) register(name, help string, kind metricKind, labels []string, buckets []float64, fn func() float64) *family {
	if name == "" {
		panic("obs: metric name must not be empty")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different schema", name))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %s re-registered with a different schema", name))
			}
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		fn:       fn,
		children: make(map[string]any),
	}
	r.families[name] = f
	return f
}

// Counter returns the registry's unlabeled counter with this name.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, nil, nil, nil).child(nil).(*Counter)
}

// Gauge returns the registry's unlabeled gauge with this name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, nil, nil, nil).child(nil).(*Gauge)
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time — for state that already lives elsewhere and would otherwise
// need a copy kept in sync.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, kindGaugeFunc, nil, nil, fn)
}

// CounterFunc registers a counter whose value is computed by fn at
// scrape time. fn must be monotone non-decreasing over the process
// lifetime — the exposition TYPE is counter, and consumers apply
// rate() to it. It exists for totals that are kept in sharded or
// striped form on a hot path and would otherwise need a second,
// contended accumulator solely for the exposition.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, kindCounterFunc, nil, nil, fn)
}

// Histogram returns the registry's unlabeled histogram with this
// name. buckets are the upper bounds (see ExpBuckets); they are fixed
// at first registration.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, kindHistogram, nil, buckets, nil).child(nil).(*Histogram)
}

// CounterVec is a counter family partitioned by labels.
type CounterVec struct{ f *family }

// CounterVec returns the registry's counter family with this name and
// label schema.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, labels, nil, nil)}
}

// With returns the child counter for the given label values (one per
// label, in schema order).
func (v *CounterVec) With(values ...string) *Counter { return v.f.child(values).(*Counter) }

// GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct{ f *family }

// GaugeVec returns the registry's gauge family with this name and
// label schema.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, kindGauge, labels, nil, nil)}
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.child(values).(*Gauge) }

// HistogramVec is a histogram family partitioned by labels; every
// child shares the family's bucket layout.
type HistogramVec struct{ f *family }

// HistogramVec returns the registry's histogram family with this
// name, bucket layout and label schema.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, kindHistogram, labels, buckets, nil)}
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.child(values).(*Histogram) }

// FamilyDesc describes one registered family — the metrics contract
// the golden exposition test pins.
type FamilyDesc struct {
	Name   string
	Type   string
	Labels []string
}

// Describe returns every registered family sorted by name.
func (r *Registry) Describe() []FamilyDesc {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FamilyDesc, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, FamilyDesc{
			Name:   f.name,
			Type:   f.kind.String(),
			Labels: append([]string(nil), f.labels...),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value for exposition.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// escapeHelp escapes a HELP line.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// labelPairs renders {k="v",...} for the given values plus optional
// extra pairs (the histogram "le" label); empty when there are none.
func labelPairs(names, values []string, extra ...string) string {
	if len(names) == 0 && len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabel(values[i]))
	}
	for i := 0; i+1 < len(extra); i += 2 {
		if b.Len() > 1 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extra[i], escapeLabel(extra[i+1]))
	}
	b.WriteByte('}')
	return b.String()
}

// WriteTo renders the registry in the Prometheus text format:
// families sorted by name, children sorted by label values, HELP and
// TYPE lines always present so the exported schema is visible even
// before a labeled family has its first child.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	cw := &countingWriter{w: w}
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(cw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(cw, "# TYPE %s %s\n", f.name, f.kind.String())
		if f.kind == kindGaugeFunc || f.kind == kindCounterFunc {
			fmt.Fprintf(cw, "%s %s\n", f.name, formatValue(f.fn()))
			continue
		}
		f.mu.Lock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		children := make([]any, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		f.mu.Unlock()
		for i, key := range keys {
			var values []string
			if key != "" || len(f.labels) > 0 {
				values = strings.Split(key, "\x1f")
			}
			switch c := children[i].(type) {
			case *Counter:
				fmt.Fprintf(cw, "%s%s %s\n", f.name, labelPairs(f.labels, values), formatValue(c.Value()))
			case *Gauge:
				fmt.Fprintf(cw, "%s%s %s\n", f.name, labelPairs(f.labels, values), formatValue(c.Value()))
			case *Histogram:
				cum, total := c.snapshot()
				for b, upper := range c.upper {
					fmt.Fprintf(cw, "%s_bucket%s %d\n", f.name,
						labelPairs(f.labels, values, "le", formatValue(upper)), cum[b])
				}
				fmt.Fprintf(cw, "%s_bucket%s %d\n", f.name,
					labelPairs(f.labels, values, "le", "+Inf"), total)
				fmt.Fprintf(cw, "%s_sum%s %s\n", f.name, labelPairs(f.labels, values), formatValue(c.Sum()))
				fmt.Fprintf(cw, "%s_count%s %d\n", f.name, labelPairs(f.labels, values), total)
			}
		}
	}
	return cw.n, cw.err
}

// countingWriter tracks bytes written and the first error, so the
// exposition loop doesn't have to check every Fprintf.
type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}

// Handler serves the registry at GET /metrics in the text exposition
// format. Non-GET methods get 405 — the same contract the mirror's
// other read-only endpoints follow.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteTo(w)
	})
}
