package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing value. The zero value is
// ready to use; all methods are safe for concurrent use.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d to the counter. Negative or NaN deltas are ignored —
// a counter only ever moves forward.
func (c *Counter) Add(d float64) {
	if !(d > 0) {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a value that can move in both directions. The zero value is
// ready to use; all methods are safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (which may be negative) to the gauge.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets and tracks their
// sum. Buckets are chosen at construction (see ExpBuckets for the
// log-spaced layouts this repository uses) and never change, so
// Observe is a binary search plus two atomic adds. Safe for
// concurrent use.
type Histogram struct {
	upper  []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []atomic.Uint64
	sum    Counter
	count  atomic.Uint64
}

// newHistogram builds a histogram over the given upper bounds, which
// must be sorted ascending; a trailing +Inf bound is dropped (the
// overflow bucket is implicit).
func newHistogram(buckets []float64) *Histogram {
	upper := make([]float64, 0, len(buckets))
	for _, b := range buckets {
		if !math.IsInf(b, 1) {
			upper = append(upper, b)
		}
	}
	if !sort.Float64sAreSorted(upper) {
		panic("obs: histogram buckets must be sorted ascending")
	}
	return &Histogram{
		upper:  upper,
		counts: make([]atomic.Uint64, len(upper)+1),
	}
}

// Observe records one value. NaN observations are ignored.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// snapshot returns the cumulative bucket counts (aligned with upper,
// plus the +Inf bucket last) and the total count. Buckets are read
// without stopping writers; the +Inf entry is the count read at the
// same moment, so cumulative counts never exceed it by construction
// of the read order (per-bucket counts are read before count).
func (h *Histogram) snapshot() (cum []uint64, total uint64) {
	cum = make([]uint64, len(h.counts))
	var run uint64
	for i := range h.counts {
		run += h.counts[i].Load()
		cum[i] = run
	}
	return cum, cum[len(cum)-1]
}

// ExpBuckets returns count log-spaced bucket upper bounds starting at
// start and growing by factor: start, start·factor, start·factor², …
// This is the fixed-bucket layout the repository's latency histograms
// use — log spacing keeps relative error constant across four orders
// of magnitude at a flat memory cost.
func ExpBuckets(start, factor float64, count int) []float64 {
	if !(start > 0) || !(factor > 1) || count < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, count >= 1")
	}
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets is the default layout for operation-latency
// histograms: 100µs to ~13s in 18 doubling steps. Refresh round
// trips, solver runs and fsyncs all land comfortably inside it.
func LatencyBuckets() []float64 { return ExpBuckets(100e-6, 2, 18) }

// CountBuckets is the default layout for small-integer histograms
// (iteration counts and the like): 1 to 4096 in doubling steps.
func CountBuckets() []float64 { return ExpBuckets(1, 2, 13) }
