package obs

import (
	"strings"
	"testing"
)

func TestParseExpositionTolerant(t *testing.T) {
	in := `
# HELP good_total fine
# TYPE good_total counter
good_total 12
this line is garbage
also{unterminated 3
good_labeled{a="x",b="y"} 4.5
{empty_name} 1
no_value_here
`
	e, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if e.BadLines != 4 {
		t.Errorf("BadLines = %d, want 4", e.BadLines)
	}
	if v, ok := e.Value("good_total"); !ok || v != 12 {
		t.Errorf("good_total = %v, %v", v, ok)
	}
	if v, ok := e.Value("good_labeled", "a", "x", "b", "y"); !ok || v != 4.5 {
		t.Errorf("good_labeled = %v, %v", v, ok)
	}
	if _, ok := e.Value("good_labeled", "a", "nope"); ok {
		t.Error("constraint mismatch still matched")
	}
}

func TestParseExpositionAllGarbage(t *testing.T) {
	if _, err := ParseExposition(strings.NewReader("complete nonsense\nmore nonsense\n")); err == nil {
		t.Error("fully malformed exposition accepted")
	}
}

func TestParseExpositionEmpty(t *testing.T) {
	e, err := ParseExposition(strings.NewReader(""))
	if err != nil {
		t.Fatalf("empty exposition must parse: %v", err)
	}
	if len(e.Samples) != 0 {
		t.Errorf("samples from empty input: %v", e.Samples)
	}
}

func TestHistogramQuantile(t *testing.T) {
	in := `
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 10
lat_seconds_bucket{le="1"} 90
lat_seconds_bucket{le="10"} 100
lat_seconds_bucket{le="+Inf"} 100
lat_seconds_sum 55
lat_seconds_count 100
`
	e, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// Median: rank 50 falls in the (0.1, 1] bucket, halfway through it.
	p50, ok := e.HistogramQuantile("lat_seconds", 0.5)
	if !ok {
		t.Fatal("quantile on populated histogram reported absent")
	}
	if p50 < 0.1 || p50 > 1 {
		t.Errorf("p50 = %v, want inside (0.1, 1]", p50)
	}
	p99, ok := e.HistogramQuantile("lat_seconds", 0.99)
	if !ok || p99 < 1 || p99 > 10 {
		t.Errorf("p99 = %v, %v; want inside (1, 10]", p99, ok)
	}
	if _, ok := e.HistogramQuantile("missing_seconds", 0.5); ok {
		t.Error("quantile on a missing histogram reported present")
	}
}

func TestHistogramQuantileWithConstraints(t *testing.T) {
	in := `
lat_seconds_bucket{outcome="success",le="1"} 4
lat_seconds_bucket{outcome="success",le="+Inf"} 4
lat_seconds_bucket{outcome="failure",le="1"} 0
lat_seconds_bucket{outcome="failure",le="+Inf"} 0
`
	e, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := e.HistogramQuantile("lat_seconds", 0.5, "outcome", "success"); !ok || v <= 0 || v > 1 {
		t.Errorf("success p50 = %v, %v", v, ok)
	}
	if _, ok := e.HistogramQuantile("lat_seconds", 0.5, "outcome", "failure"); ok {
		t.Error("empty histogram produced a quantile")
	}
}

func TestFamiliesFoldsHistogramSeries(t *testing.T) {
	in := `
# TYPE a_seconds histogram
a_seconds_bucket{le="+Inf"} 1
a_seconds_sum 0.5
a_seconds_count 1
b_total 2
`
	e, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	fams := e.Families()
	if len(fams) != 2 || fams[0] != "a_seconds" || fams[1] != "b_total" {
		t.Errorf("Families = %v, want [a_seconds b_total]", fams)
	}
}
