package obs

import (
	"sync"
	"time"
)

// LogLimiter rate-limits a repetitive log site to one emission per
// interval. A failing subsystem that would otherwise log per event
// (a dying state disk at refresh cadence, say) emits one line per
// interval instead, carrying the count of occurrences suppressed since
// the previous line. Safe for concurrent use.
type LogLimiter struct {
	mu         sync.Mutex
	interval   time.Duration
	last       time.Time
	suppressed int
}

// NewLogLimiter builds a limiter allowing one emission per interval;
// non-positive intervals allow every emission.
func NewLogLimiter(interval time.Duration) *LogLimiter {
	return &LogLimiter{interval: interval}
}

// Allow records one occurrence at now and reports whether the caller
// should emit it, along with how many occurrences were suppressed
// since the last allowed one (0 the first time). The first occurrence
// is always allowed: operators see a fresh failure immediately, and
// only the repeats are coalesced.
func (l *LogLimiter) Allow(now time.Time) (emit bool, suppressed int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.last.IsZero() && l.interval > 0 && now.Sub(l.last) < l.interval {
		l.suppressed++
		return false, 0
	}
	suppressed = l.suppressed
	l.suppressed = 0
	l.last = now
	return true, suppressed
}
