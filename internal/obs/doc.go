// Package obs is the repository's dependency-free observability
// layer: atomic metric primitives (Counter, Gauge, Histogram with
// fixed log-spaced buckets), a label-aware Registry with Prometheus
// text-format exposition, a tolerant exposition parser for scrapers
// and tests, and a small structured-event logging facade over
// log/slog.
//
// Everything here is stdlib-only by design — the mirror's north star
// is a production service, and a service that cannot be observed
// cannot be operated, but pulling a metrics dependency into go.mod
// would be a heavier contract than the ~300 lines it saves. The
// exposition format follows the Prometheus text format version 0.0.4
// closely enough for any Prometheus-compatible scraper.
//
// Concurrency: all metric mutators (Inc, Add, Set, Observe) are
// lock-free atomics and safe for concurrent use; Registry and Vec
// lookups take short internal locks. Exposition reads metric values
// without stopping writers, so a scrape observes each series at a
// slightly different instant — the usual monitoring contract.
package obs
