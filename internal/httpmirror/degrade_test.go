package httpmirror

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"freshen/internal/core"
	"freshen/internal/persist"
	"freshen/internal/resilience"
)

// newChaosMirror builds a persistent mirror over src whose store is
// wrapped in a FaultStore the test breaks and heals.
func newChaosMirror(t *testing.T, f *faultySource, dir string, plan persist.FaultPlan, snapshotEvery float64) (*Mirror, *persist.FaultStore) {
	t.Helper()
	inner, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { inner.Close() })
	fs := persist.NewFaultStore(inner, plan)
	client := NewSourceClient(f.srv.URL, f.srv.Client())
	client.SetRetryPolicy(fastRetry(1))
	m, err := New(context.Background(), Config{
		Upstream:      client,
		Plan:          core.Config{Bandwidth: 16},
		ReplanEvery:   1000,
		Persist:       fs,
		SnapshotEvery: snapshotEvery,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, fs
}

// checkRetryAfter asserts a 503's Retry-After is one of the jittered
// hints in [RetryAfterSeconds, RetryAfterSeconds+RetryAfterSpread).
func checkRetryAfter(t *testing.T, h http.Header, context string) {
	t.Helper()
	got := h.Get("Retry-After")
	n, err := strconv.Atoi(got)
	if err != nil || n < resilience.RetryAfterSeconds || n >= resilience.RetryAfterSeconds+resilience.RetryAfterSpread {
		t.Errorf("%s: Retry-After = %q, want integer in [%d, %d)", context, got,
			resilience.RetryAfterSeconds, resilience.RetryAfterSeconds+resilience.RetryAfterSpread)
	}
}

// TestOverloadShedding saturates the admission limiter and checks the
// contract: object reads past the limit get an immediate 503 with
// Retry-After, while health, readiness, and status are never shed;
// freed capacity admits again.
func TestOverloadShedding(t *testing.T) {
	f := newFaultySource(t, []float64{1, 1})
	client := NewSourceClient(f.srv.URL, f.srv.Client())
	client.SetRetryPolicy(fastRetry(1))
	m, err := New(context.Background(), Config{
		Upstream: client,
		Plan:     core.Config{Bandwidth: 4},
		Overload: resilience.LimiterConfig{MaxInflight: 2},
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	// Occupy both slots as if two reads were stuck in flight.
	for i := 0; i < 2; i++ {
		if !m.limiter.Acquire() {
			t.Fatalf("slot %d shed below the limit", i)
		}
	}
	resp, err := http.Get(srv.URL + "/object/0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated object read: status %d, want 503", resp.StatusCode)
	}
	checkRetryAfter(t, resp.Header, "shed object read")
	// Ops routes are priority traffic: never shed.
	for _, path := range []string{"/healthz", "/readyz", "/status"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s under overload: status %d, want 200", path, resp.StatusCode)
		}
	}
	st := m.Status()
	if st.Shed == 0 {
		t.Error("Status.Shed = 0 after a shed request")
	}
	if st.InflightLimit != 2 || st.Inflight != 2 {
		t.Errorf("Status inflight %d/%d, want 2/2", st.Inflight, st.InflightLimit)
	}

	// Capacity freed: the next read is admitted.
	m.limiter.Release(0)
	m.limiter.Release(0)
	resp, err = http.Get(srv.URL + "/object/0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("object read after release: status %d, want 200", resp.StatusCode)
	}
}

// TestCanceledRequestReleasesSlot pins the disconnect contract on
// /object: a client that goes away while its read is stalled in the
// chaos latency window gives its admission slot back immediately and
// is counted as canceled — the slot is not held for the rest of the
// stall, so live clients are not shed behind dead ones.
func TestCanceledRequestReleasesSlot(t *testing.T) {
	f := newFaultySource(t, []float64{1, 1})
	client := NewSourceClient(f.srv.URL, f.srv.Client())
	client.SetRetryPolicy(fastRetry(1))
	m, err := New(context.Background(), Config{
		Upstream:          client,
		Plan:              core.Config{Bandwidth: 4},
		Overload:          resilience.LimiterConfig{MaxInflight: 1},
		ServeFaultLatency: 150 * time.Millisecond,
		Seed:              1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/object/0", nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			err = fmt.Errorf("read completed with status %d despite the cancel", resp.StatusCode)
		}
		done <- err
	}()

	// The read holds the only slot once it is stalled in the window.
	deadline := time.Now().Add(5 * time.Second)
	for m.Status().Inflight != 1 {
		if time.Now().After(deadline) {
			t.Fatal("read never acquired the admission slot")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("client saw %v, want context canceled", err)
	}
	for {
		st := m.Status()
		if st.Canceled == 1 && st.Inflight == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot not released after cancel: inflight=%d canceled=%d", st.Inflight, st.Canceled)
		}
		time.Sleep(time.Millisecond)
	}

	// The freed slot admits a live client: with MaxInflight 1, a leaked
	// slot would shed this read with a 503 instead of serving it.
	resp, err := http.Get(srv.URL + "/object/0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read after cancel: status %d, want 200", resp.StatusCode)
	}
	if shed := m.Status().Shed; shed != 0 {
		t.Errorf("%d requests shed — the canceled read leaked its slot", shed)
	}
}

// TestReadyzRetryAfter asserts the Retry-After header on both the
// plain-text and JSON not-ready 503s.
func TestReadyzRetryAfter(t *testing.T) {
	f := newFaultySource(t, []float64{1, 1})
	// A cold persistent mirror is not ready until its first snapshot.
	m, _ := newPersistMirror(t, f.srv.URL, f.srv.Client(), t.TempDir(), 1, 1000, nil)
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	for _, accept := range []string{"text/plain", "application/json"} {
		req, _ := http.NewRequest(http.MethodGet, srv.URL+"/readyz", nil)
		req.Header.Set("Accept", accept)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("accept %q: status %d, want 503", accept, resp.StatusCode)
		}
		checkRetryAfter(t, resp.Header, "accept "+accept)
	}
}

// TestSourceDegradedHeaders drives the upstream down until the breaker
// opens, then checks the explicit degraded-serving contract: object
// reads still succeed but carry the mode and a staleness bound; both
// disappear once the breaker closes.
func TestSourceDegradedHeaders(t *testing.T) {
	f := newFaultySource(t, []float64{1, 1})
	m := newFaultMirror(t, f, 4, FaultPolicy{
		BreakerThreshold: 3,
		BreakerCooldown:  1,
		QuarantineAfter:  -1,
	})
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	f.down.Store(true)
	for step := 1; m.Mode()&resilience.ModeSourceDegraded == 0; step++ {
		if step > 40 {
			t.Fatal("breaker never opened")
		}
		if _, err := m.Step(0.25 * float64(step)); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Get(srv.URL + "/object/0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded object read: status %d, want 200 (serve-through)", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Mirror-Mode"); got != "source-degraded" {
		t.Errorf("X-Mirror-Mode = %q, want source-degraded", got)
	}
	stale, err := strconv.ParseFloat(resp.Header.Get("X-Staleness-Periods"), 64)
	if err != nil || stale < 0 {
		t.Errorf("X-Staleness-Periods = %q, want a non-negative float", resp.Header.Get("X-Staleness-Periods"))
	}

	// Heal: the cooldown elapses, the half-open probe succeeds, the
	// breaker closes, and the degraded headers disappear.
	f.down.Store(false)
	for step := 0; m.Mode() != resilience.ModeFull; step++ {
		if step > 40 {
			t.Fatalf("mode never recovered, still %v", m.Mode())
		}
		if _, err := m.Step(12 + 0.25*float64(step)); err != nil {
			t.Fatal(err)
		}
	}
	resp, err = http.Get(srv.URL + "/object/0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Mirror-Mode"); got != "" {
		t.Errorf("recovered response still carries X-Mirror-Mode=%q", got)
	}
	if m.Status().ModeTransitions < 2 {
		t.Errorf("mode transitions = %d, want >= 2 (enter + leave)", m.Status().ModeTransitions)
	}
}

// TestDiskDiesMidRun is the disk-fault chaos test: the state disk
// dies under a running mirror, which must enter persist-degraded
// (read-only) mode, stop burning fsync timeouts on journaling, keep
// serving objects, and recover full durability after the disk heals —
// with the recovery gated on a real successful fsync.
func TestDiskDiesMidRun(t *testing.T) {
	f := newFaultySource(t, []float64{3, 1, 0.5, 2})
	m, fs := newChaosMirror(t, f, t.TempDir(), persist.FaultPlan{}, 2)
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	// Healthy warm-up: accumulate journaled refreshes and a snapshot.
	now := 0.0
	for step := 1; step <= 12; step++ {
		now = 0.25 * float64(step)
		f.src.Advance(now)
		if _, err := m.Step(now); err != nil {
			t.Fatal(err)
		}
	}
	if m.Status().Snapshots == 0 {
		t.Fatal("setup: no snapshot during healthy run")
	}
	if m.Mode() != resilience.ModeFull {
		t.Fatalf("setup: mode %v, want full", m.Mode())
	}

	// The disk dies.
	fs.Break(persist.ErrDiskIO)
	for step := 1; m.Mode()&resilience.ModePersistDegraded == 0; step++ {
		if step > 60 {
			t.Fatal("mirror never entered persist-degraded mode")
		}
		now += 0.25
		f.src.Advance(now)
		if _, err := m.Step(now); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Status()
	if st.ConsecutivePersistFailures < 3 {
		t.Errorf("consecutive persist failures = %d, want >= 3", st.ConsecutivePersistFailures)
	}
	if st.Mode != "persist-degraded" {
		t.Errorf("Status.Mode = %q, want persist-degraded", st.Mode)
	}

	// Read-only mode: journaling stops (skips accumulate), serving
	// does not.
	preInjected := fs.Injected()
	for step := 1; step <= 12; step++ {
		now += 0.25
		f.src.Advance(now)
		if _, err := m.Step(now); err != nil {
			t.Fatal(err)
		}
	}
	if m.Status().JournalSkipped == 0 {
		t.Error("no journal appends skipped while persist-degraded")
	}
	// The only ops still reaching the dead disk are the backed-off
	// snapshot probes — far fewer than one per refresh.
	if probes := fs.Injected() - preInjected; probes > 4 {
		t.Errorf("%d ops hit the dead disk across 3 periods, want backed-off probes only", probes)
	}
	resp, err := http.Get(srv.URL + "/object/0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("object read in persist-degraded mode: status %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Mirror-Mode"); got != "persist-degraded" {
		t.Errorf("X-Mirror-Mode = %q, want persist-degraded", got)
	}
	if resp.Header.Get("X-Staleness-Periods") != "" {
		t.Error("persist-degraded response carries a staleness header (source axis is healthy)")
	}

	// The disk heals: the next snapshot probe fsync succeeds, clearing
	// the mode and restoring durability.
	fs.Heal()
	preSnapshots := m.Status().Snapshots
	for step := 1; m.Mode() != resilience.ModeFull; step++ {
		if step > 200 {
			t.Fatalf("mode never recovered after heal, still %v", m.Mode())
		}
		now += 0.5
		f.src.Advance(now)
		if _, err := m.Step(now); err != nil {
			t.Fatal(err)
		}
	}
	st = m.Status()
	if st.Snapshots <= preSnapshots {
		t.Error("recovery to full without a new durable snapshot")
	}
	if st.ConsecutivePersistFailures != 0 {
		t.Errorf("consecutive persist failures = %d after recovery, want 0", st.ConsecutivePersistFailures)
	}
}

// TestKillRestartInPersistDegraded kills a mirror while its disk is
// dead and restarts it against the same (still dead) disk: the boot
// fsync probe must put it straight into persist-degraded mode, the
// learned state must come back from the last good snapshot, serving
// must work — and only after the disk heals and one fsync succeeds
// does it re-enter full mode.
func TestKillRestartInPersistDegraded(t *testing.T) {
	f := newFaultySource(t, []float64{3, 1, 0.5, 2})
	dir := t.TempDir()
	m1, fs1 := newChaosMirror(t, f, dir, persist.FaultPlan{}, 1000)

	// Build up learned state and flush it while the disk still works.
	now := 0.0
	for step := 1; step <= 20; step++ {
		now = 0.25 * float64(step)
		f.src.Advance(now)
		if _, err := m1.Step(now); err != nil {
			t.Fatal(err)
		}
		m1.Access(step % 3)
	}
	if err := m1.FlushSnapshot(); err != nil {
		t.Fatal(err)
	}
	preEst, err := m1.estimatesSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	pre := m1.Status()

	// The disk dies; the mirror degrades; then the process "dies" too.
	fs1.Break(persist.ErrDiskFull)
	for step := 1; m1.Mode()&resilience.ModePersistDegraded == 0; step++ {
		if step > 60 {
			t.Fatal("m1 never entered persist-degraded mode")
		}
		now += 0.25
		f.src.Advance(now)
		if _, err := m1.Step(now); err != nil {
			t.Fatal(err)
		}
	}
	fs1.Inner().Close()

	// Restart against the same state dir, disk still dead: the broken
	// FaultStore fails the boot probe.
	inner2, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer inner2.Close()
	fs2 := persist.NewFaultStore(inner2, persist.FaultPlan{})
	fs2.Break(persist.ErrDiskFull)
	client := NewSourceClient(f.srv.URL, f.srv.Client())
	client.SetRetryPolicy(fastRetry(1))
	m2, err := New(context.Background(), Config{
		Upstream:      client,
		Plan:          core.Config{Bandwidth: 16},
		ReplanEvery:   1000,
		Persist:       fs2,
		SnapshotEvery: 1,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	rd := m2.Readiness()
	if !rd.Recovered {
		t.Fatalf("restart did not recover: %+v", rd)
	}
	if rd.Mode != "persist-degraded" {
		t.Errorf("boot mode = %q, want persist-degraded (probe failed)", rd.Mode)
	}
	// The learned state survived via the last good snapshot.
	postEst, err := m2.estimatesSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i := range preEst {
		if preEst[i] != postEst[i] {
			t.Errorf("element %d: recovered estimate %v != pre-kill %v", i, postEst[i], preEst[i])
		}
	}
	if got := m2.Status().Accesses; got != pre.Accesses {
		t.Errorf("access log: recovered %d, want %d", got, pre.Accesses)
	}
	// Degraded but serving.
	if _, _, err := m2.Access(0); err != nil {
		t.Fatalf("degraded restarted mirror refused a read: %v", err)
	}

	// While the disk stays dead, stepping never restores full mode.
	now2 := m2.Status().Now
	for step := 1; step <= 8; step++ {
		now2 += 0.5
		f.src.Advance(now2)
		if _, err := m2.Step(now2); err != nil {
			t.Fatal(err)
		}
	}
	if m2.Mode()&resilience.ModePersistDegraded == 0 {
		t.Fatal("mirror left persist-degraded mode without a successful fsync")
	}

	// Heal; the next snapshot probe's fsync is the recovery proof.
	fs2.Heal()
	for step := 1; m2.Mode() != resilience.ModeFull; step++ {
		if step > 200 {
			t.Fatalf("mode never recovered after heal, still %v", m2.Mode())
		}
		now2 += 0.5
		f.src.Advance(now2)
		if _, err := m2.Step(now2); err != nil {
			t.Fatal(err)
		}
	}
	if m2.Status().Snapshots == 0 {
		t.Error("recovered to full without a durable snapshot")
	}
}
