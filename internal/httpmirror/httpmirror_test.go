package httpmirror

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"freshen/internal/core"
)

func newTestPair(t *testing.T, lambdas []float64, bandwidth float64) (*SimulatedSource, *Mirror) {
	t.Helper()
	src, err := NewSimulatedSource(lambdas, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(src.Handler())
	t.Cleanup(srv.Close)
	m, err := New(context.Background(), Config{
		Upstream:    NewSourceClient(srv.URL, srv.Client()),
		Plan:        core.Config{Bandwidth: bandwidth},
		ReplanEvery: 10,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return src, m
}

func TestSimulatedSourceVersions(t *testing.T) {
	src, err := NewSimulatedSource([]float64{5, 0}, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	v0a, err := src.Version(0)
	if err != nil {
		t.Fatal(err)
	}
	src.Advance(10)
	v0b, _ := src.Version(0)
	v1, _ := src.Version(1)
	if v0b <= v0a {
		t.Errorf("object 0 (λ=5) did not change over 10 periods: %d -> %d", v0a, v0b)
	}
	if v1 != 0 {
		t.Errorf("object 1 (λ=0) changed: version %d", v1)
	}
	if _, err := src.Version(9); err == nil {
		t.Error("out-of-range version must fail")
	}
	if src.Now() != 10 {
		t.Errorf("Now = %v", src.Now())
	}
	// Advancing backwards is a no-op.
	src.Advance(5)
	if src.Now() != 10 {
		t.Errorf("clock moved backwards to %v", src.Now())
	}
}

func TestSourceHandlerProtocol(t *testing.T) {
	src, err := NewSimulatedSource([]float64{1, 2}, []float64{1, 3.5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(src.Handler())
	defer srv.Close()
	client := NewSourceClient(srv.URL, srv.Client())
	ctx := context.Background()

	catalog, err := client.Catalog(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(catalog) != 2 || catalog[1].Size != 3.5 {
		t.Errorf("catalog = %+v", catalog)
	}
	body, ver, err := client.Fetch(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ver != 0 || !strings.Contains(string(body), "object 0") {
		t.Errorf("fetch: version %d body %q", ver, body)
	}
	if _, err := client.Version(ctx, 1); err != nil {
		t.Errorf("head failed: %v", err)
	}
	if _, _, err := client.Fetch(ctx, 99); err == nil {
		t.Error("fetching a missing object must fail")
	}
	resp, err := srv.Client().Get(srv.URL + "/object/xyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id returned %s", resp.Status)
	}
}

func TestMirrorSeedsAndServes(t *testing.T) {
	_, m := newTestPair(t, []float64{2, 1, 0.5}, 3)
	body, ver, err := m.Access(0)
	if err != nil {
		t.Fatal(err)
	}
	if ver != 0 || len(body) == 0 {
		t.Errorf("seeded copy: version %d, body %q", ver, body)
	}
	if _, _, err := m.Access(9); err == nil {
		t.Error("out-of-range access must fail")
	}
	st := m.Status()
	if st.Objects != 3 || st.Fetches != 3 || st.Accesses != 1 {
		t.Errorf("status = %+v", st)
	}
	if st.PlannedPF <= 0 {
		t.Errorf("planned PF = %v", st.PlannedPF)
	}
}

func TestMirrorStepRefreshes(t *testing.T) {
	src, m := newTestPair(t, []float64{4, 4, 4, 4}, 8)
	src.Advance(3)
	refreshes, err := m.Step(3)
	if err != nil {
		t.Fatal(err)
	}
	// Budget 8/period over 3 periods: about 24 refreshes.
	if refreshes < 18 || refreshes > 30 {
		t.Errorf("refreshes = %d, want about 24", refreshes)
	}
	// A refreshed copy carries the advanced version.
	_, ver, err := m.Access(0)
	if err != nil {
		t.Fatal(err)
	}
	srcVer, _ := src.Version(0)
	if ver == 0 && srcVer > 2 {
		t.Errorf("copy still at version 0 while source is at %d", srcVer)
	}
	if _, err := m.Step(1); err == nil {
		t.Error("clock moving backwards must fail")
	}
}

func TestMirrorLearnsAndReplans(t *testing.T) {
	src, m := newTestPair(t, []float64{6, 6, 0.1, 0.1}, 4)
	initial := m.Plan()
	// All traffic hits object 0; advance past the replan cadence.
	for i := 0; i < 500; i++ {
		if _, _, err := m.Access(0); err != nil {
			t.Fatal(err)
		}
	}
	for now := 0.5; now <= 12; now += 0.5 {
		src.Advance(now)
		if _, err := m.Step(now); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Status()
	if st.Replans < 2 {
		t.Fatalf("mirror never replanned: %+v", st)
	}
	replanned := m.Plan()
	if replanned.Freqs[0] <= initial.Freqs[0] {
		t.Errorf("hot object frequency did not rise: %v -> %v",
			initial.Freqs[0], replanned.Freqs[0])
	}
}

func TestMirrorConditionalFetch(t *testing.T) {
	// An object that never changes costs polls but no transfers; a
	// churning one transfers on (almost) every refresh.
	src, m := newTestPair(t, []float64{0, 50}, 8)
	src.Advance(5)
	if _, err := m.Step(5); err != nil {
		t.Fatal(err)
	}
	st := m.Status()
	// ~40 refreshes happened; the static object contributed none of
	// the transfers.
	if st.Transfers == 0 {
		t.Fatal("no transfers despite a churning object")
	}
	if st.Transfers >= st.Fetches {
		t.Errorf("transfers %d not below polls %d (static object should skip bodies)",
			st.Transfers, st.Fetches)
	}
	// The static copy is still version 0 and still served.
	body, ver, err := m.Access(0)
	if err != nil {
		t.Fatal(err)
	}
	if ver != 0 || len(body) == 0 {
		t.Errorf("static copy: version %d body %q", ver, body)
	}
	// The churning copy tracked the source.
	_, ver, err = m.Access(1)
	if err != nil {
		t.Fatal(err)
	}
	srcVer, _ := src.Version(1)
	if srcVer-ver > 60 { // λ=50 over ~0.125 period between refreshes
		t.Errorf("churning copy fell far behind: mirror %d vs source %d", ver, srcVer)
	}
}

func TestMirrorForceReplan(t *testing.T) {
	_, m := newTestPair(t, []float64{1, 1}, 2)
	before := m.Status().Replans
	if err := m.ForceReplan(); err != nil {
		t.Fatal(err)
	}
	if got := m.Status().Replans; got != before+1 {
		t.Errorf("Replans = %d, want %d", got, before+1)
	}
}

func TestMirrorHandler(t *testing.T) {
	_, m := newTestPair(t, []float64{1, 2}, 2)
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/object/1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Errorf("object: %s %q", resp.Status, body)
	}
	if resp.Header.Get("X-Version") == "" {
		t.Error("missing X-Version header")
	}

	resp, err = srv.Client().Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Objects != 2 || st.Accesses != 1 {
		t.Errorf("status = %+v", st)
	}

	resp, err = srv.Client().Post(srv.URL+"/replan", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("replan returned %s", resp.Status)
	}

	resp, err = srv.Client().Get(srv.URL + "/object/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id returned %s", resp.Status)
	}
	resp, err = srv.Client().Get(srv.URL + "/object/77")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing object returned %s", resp.Status)
	}
}

func TestSourceClientErrors(t *testing.T) {
	ctx := context.Background()
	// A dead endpoint fails every call (retries exhausted quickly).
	dead := NewSourceClient("http://127.0.0.1:1", nil)
	dead.SetRetryPolicy(RetryPolicy{MaxAttempts: 2, Timeout: time.Second, BaseBackoff: time.Millisecond})
	if _, err := dead.Catalog(ctx); err == nil {
		t.Error("catalog against a dead endpoint must fail")
	}
	if _, _, err := dead.Fetch(ctx, 0); err == nil {
		t.Error("fetch against a dead endpoint must fail")
	}
	if _, err := dead.Version(ctx, 0); err == nil {
		t.Error("head against a dead endpoint must fail")
	}
	if dead.Retries() == 0 {
		t.Error("transient failures must be retried")
	}
	if dead.Failures() != 3 {
		t.Errorf("Failures = %d, want 3", dead.Failures())
	}

	// An endpoint returning garbage fails decoding, without retrying:
	// a malformed payload is permanent.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("not json, no version header"))
	}))
	defer bad.Close()
	client := NewSourceClient(bad.URL, bad.Client())
	if _, err := client.Catalog(ctx); err == nil {
		t.Error("garbage catalog must fail")
	}
	if _, _, err := client.Fetch(ctx, 0); err == nil {
		t.Error("fetch without X-Version must fail")
	}
	if _, err := client.Version(ctx, 0); err == nil {
		t.Error("head without X-Version must fail")
	}
	if client.Retries() != 0 {
		t.Errorf("permanent errors retried %d times", client.Retries())
	}

	// An empty catalog is rejected explicitly.
	empty := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("[]"))
	}))
	defer empty.Close()
	if _, err := NewSourceClient(empty.URL, empty.Client()).Catalog(ctx); err == nil {
		t.Error("empty catalog must fail")
	}
}

func TestSourceHandlerMethodNotAllowed(t *testing.T) {
	src, err := NewSimulatedSource([]float64{1}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(src.Handler())
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL+"/catalog", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /catalog returned %s", resp.Status)
	}
	resp, err = srv.Client().Post(srv.URL+"/object/0", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /object returned %s", resp.Status)
	}
}

func TestMirrorRunLoop(t *testing.T) {
	src, m := newTestPair(t, []float64{20, 20}, 40)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	// Advance the simulated source alongside the wall clock.
	go func() {
		start := time.Now()
		for ctx.Err() == nil {
			src.Advance(time.Since(start).Seconds() / 0.05)
			time.Sleep(2 * time.Millisecond)
		}
	}()
	go func() { done <- m.Run(ctx, 50*time.Millisecond) }()
	time.Sleep(300 * time.Millisecond)
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run returned %v on cancel", err)
	}
	st := m.Status()
	// ~6 periods at 40 refreshes/period plus the seeding fetches.
	if st.Fetches < 50 {
		t.Errorf("only %d fetches after 6 periods at budget 40/period", st.Fetches)
	}
	// A second Run resumes without driving the clock backwards.
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() { done <- m.Run(ctx2, 50*time.Millisecond) }()
	time.Sleep(60 * time.Millisecond)
	cancel2()
	if err := <-done; err != nil {
		t.Fatalf("resumed Run returned %v", err)
	}
	if err := m.Run(context.Background(), 0); err == nil {
		t.Error("zero period must fail")
	}
}

func TestMirrorValidation(t *testing.T) {
	if _, err := New(context.Background(), Config{}); err == nil {
		t.Error("missing upstream must fail")
	}
	if _, err := NewSimulatedSource(nil, nil, 1); err == nil {
		t.Error("empty source must fail")
	}
	if _, err := NewSimulatedSource([]float64{-1}, nil, 1); err == nil {
		t.Error("negative rate must fail")
	}
	if _, err := NewSimulatedSource([]float64{1}, []float64{1, 2}, 1); err == nil {
		t.Error("size length mismatch must fail")
	}
}
