package httpmirror

import (
	"math"
	"net/http"
	"strconv"
	"time"

	"freshen/internal/resilience"
)

// This file is the mirror's degradation surface: the mode machine's
// published word, the headers the degraded read path attaches, and the
// Retry-After hint shared by every 503 the mirror emits.
//
// The machine itself (internal/resilience) is mutated only under m.mu;
// readers never touch it. publishModeLocked re-derives the mode after
// every signal change and swaps it into modeWord, so the object
// handler's check is one atomic load — zero cost, zero allocation,
// while the mirror is healthy.

// journalWarnInterval is the floor between "journal append failed"
// warn lines: a dying disk at refresh cadence otherwise floods the log
// with one line per record. Suppressed occurrences are counted and
// reported on the next emitted line.
const journalWarnInterval = 10 * time.Second

// Every 503 the mirror emits (overload shed, not-ready readyz) carries
// a jittered Retry-After from resilience.RetryAfterHeader, so clients
// turned away in one burst don't retry in lockstep and re-stampede a
// server that just recovered capacity.

// publishModeLocked derives the mode from the machine and publishes it
// for lock-free readers, logging the transition when it changed.
// Callers hold m.mu (or are New, before any concurrency).
func (m *Mirror) publishModeLocked() {
	mode := m.machine.Mode()
	if old := resilience.Mode(m.modeWord.Swap(uint32(mode))); old != mode {
		m.log.Warn("degradation mode changed",
			"from", old.String(), "to", mode.String(), "now", m.now)
	}
}

// Mode is the mirror's current degradation mode (one atomic load).
func (m *Mirror) Mode() resilience.Mode {
	return resilience.Mode(m.modeWord.Load())
}

// degradedHeaders attaches the degradation headers to an object
// response. Source-degraded responses carry how stale the body might
// be: the periods since this copy's version was last verified against
// the upstream, computed from the lock-free verified/clock words — the
// serving path takes no locks even while degraded. Only called when
// mode != ModeFull, so the healthy path never pays the allocations.
func (m *Mirror) degradedHeaders(h http.Header, mode resilience.Mode, id int) {
	h.Set("X-Mirror-Mode", mode.String())
	if mode&resilience.ModeSourceDegraded != 0 {
		clock := math.Float64frombits(m.clockBits.Load())
		staleness := clock - math.Float64frombits(m.verified[id].Load())
		if staleness < 0 {
			staleness = 0
		}
		h.Set("X-Staleness-Periods", strconv.FormatFloat(staleness, 'f', 2, 64))
	}
}
