package httpmirror

import (
	"math"
	"net/http"
	"strconv"
	"time"

	"freshen/internal/resilience"
)

// This file is the mirror's degradation surface: the mode machine's
// published word, the headers the degraded read path attaches, and the
// Retry-After hint shared by every 503 the mirror emits.
//
// The machine itself (internal/resilience) is mutated only under m.mu;
// readers never touch it. publishModeLocked re-derives the mode after
// every signal change and swaps it into modeWord, so the object
// handler's check is one atomic load — zero cost, zero allocation,
// while the mirror is healthy.

// journalWarnInterval is the floor between "journal append failed"
// warn lines: a dying disk at refresh cadence otherwise floods the log
// with one line per record. Suppressed occurrences are counted and
// reported on the next emitted line.
const journalWarnInterval = 10 * time.Second

// Every 503 the mirror emits (overload shed, not-ready readyz) carries
// a jittered Retry-After from resilience.RetryAfterHeader, so clients
// turned away in one burst don't retry in lockstep and re-stampede a
// server that just recovered capacity.

// publishModeLocked derives the mode from the machine and publishes it
// for lock-free readers, logging the transition when it changed.
// Callers hold m.mu (or are New, before any concurrency).
func (m *Mirror) publishModeLocked() {
	mode := m.machine.Mode()
	if old := resilience.Mode(m.modeWord.Swap(uint32(mode))); old != mode {
		m.log.Warn("degradation mode changed",
			"from", old.String(), "to", mode.String(), "now", m.now)
	}
}

// Mode is the mirror's current degradation mode (one atomic load).
func (m *Mirror) Mode() resilience.Mode {
	return resilience.Mode(m.modeWord.Load())
}

// modeHeaderVals pre-builds the X-Mirror-Mode header value for each of
// the four mode pairs, so attaching it is a map assignment instead of
// a per-request slice allocation (the key is already canonical MIME
// form, matching what Header().Set would store).
var modeHeaderVals = [4][]string{
	{resilience.ModeFull.String()},
	{resilience.ModeSourceDegraded.String()},
	{resilience.ModePersistDegraded.String()},
	{(resilience.ModeSourceDegraded | resilience.ModePersistDegraded).String()},
}

// degradedHeaders attaches the degradation headers to an object
// response. Source-degraded responses carry how stale the body might
// be: the periods since this copy's version was last verified against
// the upstream, computed from the lock-free verified/clock words — the
// serving path takes no locks even while degraded. In a hierarchical
// chain the upstream tier's own reported staleness compounds in: an
// edge copy verified 2 periods ago against a regional copy that is
// itself 3 periods stale is 5 periods behind the origin, and the
// header must say 5 (this is the additive age split the chain closed
// form in internal/freshness integrates over). Only called when mode
// != ModeFull, so the healthy path never pays the staleness
// formatting.
func (m *Mirror) degradedHeaders(h http.Header, mode resilience.Mode, id int) {
	h["X-Mirror-Mode"] = modeHeaderVals[mode&3]
	if mode&resilience.ModeSourceDegraded != 0 {
		clock := math.Float64frombits(m.clockBits.Load())
		staleness := clock - math.Float64frombits(m.verified[id].Load())
		if staleness < 0 {
			staleness = 0
		}
		if m.upHealth != nil {
			staleness += m.upHealth.UpstreamStaleness(id)
		}
		h.Set("X-Staleness-Periods", strconv.FormatFloat(staleness, 'f', 2, 64))
	}
}
