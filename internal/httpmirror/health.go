package httpmirror

import "fmt"

// FaultPolicy tunes the mirror's fault handling: the upstream circuit
// breaker and the per-element quarantine. The zero value enables both
// with the documented defaults; set a threshold negative to disable
// that mechanism.
type FaultPolicy struct {
	// BreakerThreshold opens the breaker after this many consecutive
	// refresh failures (any element); 0 means 5, negative disables the
	// breaker.
	BreakerThreshold int
	// BreakerCooldown is how long (in periods) the breaker stays open
	// before letting one probe refresh through; 0 means 2.
	BreakerCooldown float64
	// QuarantineAfter quarantines an element after this many
	// consecutive failures of its own refreshes; 0 means 3, negative
	// disables quarantine.
	QuarantineAfter int
	// ProbeEvery is the cadence (in periods) at which quarantined
	// elements are probed for recovery; 0 means 1.
	ProbeEvery float64
}

func (p FaultPolicy) withDefaults() FaultPolicy {
	if p.BreakerThreshold == 0 {
		p.BreakerThreshold = 5
	}
	if p.BreakerCooldown == 0 {
		p.BreakerCooldown = 2
	}
	if p.QuarantineAfter == 0 {
		p.QuarantineAfter = 3
	}
	if p.ProbeEvery == 0 {
		p.ProbeEvery = 1
	}
	return p
}

// BreakerState is the upstream circuit breaker's condition.
type BreakerState int

const (
	// BreakerClosed: refreshes flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: refreshes are skipped until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; the next refresh is a
	// probe that closes the breaker on success or reopens it.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// breaker is the upstream circuit breaker. It runs on the mirror's
// period clock and is mutated under the mirror's lock.
type breaker struct {
	threshold int     // consecutive failures to open; <0 disables
	cooldown  float64 // periods open before half-open
	state     BreakerState
	fails     int     // consecutive failures while closed
	openedAt  float64 // period the breaker last opened
	trips     int     // lifetime open transitions
}

// allow reports whether a refresh may be attempted at time now,
// transitioning open → half-open when the cooldown has elapsed.
func (b *breaker) allow(now float64) bool {
	if b.threshold < 0 {
		return true
	}
	switch b.state {
	case BreakerOpen:
		if now-b.openedAt >= b.cooldown {
			b.state = BreakerHalfOpen
			return true
		}
		return false
	default:
		return true
	}
}

// record feeds one refresh outcome into the breaker.
func (b *breaker) record(ok bool, now float64) {
	if b.threshold < 0 {
		return
	}
	if ok {
		b.fails = 0
		b.state = BreakerClosed
		return
	}
	if b.state == BreakerHalfOpen {
		// The probe failed: straight back to open, fresh cooldown.
		b.state = BreakerOpen
		b.openedAt = now
		b.trips++
		return
	}
	b.fails++
	if b.fails >= b.threshold && b.state == BreakerClosed {
		b.state = BreakerOpen
		b.openedAt = now
		b.trips++
	}
}

// elemHealth is one element's fault-tracking state.
type elemHealth struct {
	consecFails   int
	quarantined   bool
	quarantinedAt float64
	lastProbe     float64
}
