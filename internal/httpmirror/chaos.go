package httpmirror

import (
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// ChaosConfig parameterizes fault injection, for both the client-side
// ChaosTransport and the server-side FaultInjector.
type ChaosConfig struct {
	// ErrorRate is the probability in [0, 1] that a request fails (a
	// synthetic 500 for the server side, a connection error for the
	// transport).
	ErrorRate float64
	// Latency is added to every request before it is served.
	Latency time.Duration
	// StallProb is the probability that a request stalls for StallFor
	// (or until the caller's context deadline fires) instead of its
	// normal latency — the pathological slow upstream.
	StallProb float64
	// StallFor bounds a stall; 0 means 30s.
	StallFor time.Duration
	// Seed drives the injection RNG; 0 means 1.
	Seed int64
}

func (c ChaosConfig) withDefaults() (ChaosConfig, error) {
	if c.ErrorRate < 0 || c.ErrorRate > 1 || c.StallProb < 0 || c.StallProb > 1 {
		return c, fmt.Errorf("httpmirror: chaos probabilities must be in [0, 1], got error %v stall %v", c.ErrorRate, c.StallProb)
	}
	if c.StallFor <= 0 {
		c.StallFor = 30 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c, nil
}

// chaosCore holds the shared injection state.
type chaosCore struct {
	cfg    ChaosConfig
	mu     sync.Mutex
	rng    *rand.Rand
	outage atomic.Bool
	faults atomic.Int64
}

func newChaosCore(cfg ChaosConfig) (*chaosCore, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &chaosCore{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// roll decides this request's fate: fail, stall, or pass.
func (c *chaosCore) roll() (fail, stall bool) {
	if c.outage.Load() {
		c.faults.Add(1)
		return true, false
	}
	c.mu.Lock()
	f := c.rng.Float64() < c.cfg.ErrorRate
	s := !f && c.rng.Float64() < c.cfg.StallProb
	c.mu.Unlock()
	if f {
		c.faults.Add(1)
	}
	return f, s
}

// SetErrorRate replaces the probabilistic failure rate at runtime
// (e.g. ramping chaos up after a clean warm-up). Rates outside [0, 1]
// are clamped. Safe to call concurrently.
func (c *chaosCore) SetErrorRate(rate float64) {
	rate = min(max(rate, 0), 1)
	c.mu.Lock()
	c.cfg.ErrorRate = rate
	c.mu.Unlock()
}

// SetOutage toggles a full outage: every request fails while set,
// regardless of ErrorRate. Safe to call concurrently.
func (c *chaosCore) SetOutage(on bool) { c.outage.Store(on) }

// Faults returns how many requests were failed by injection.
func (c *chaosCore) Faults() int64 { return c.faults.Load() }

// ChaosTransport is an http.RoundTripper that injects faults between a
// client and its upstream: synthetic connection errors, added latency,
// stalls, and a toggleable full outage. Wrap a mirror's http.Client
// with it to run the refresh pipeline through bad weather.
type ChaosTransport struct {
	*chaosCore
	next http.RoundTripper
}

// NewChaosTransport wraps next (nil for http.DefaultTransport).
func NewChaosTransport(next http.RoundTripper, cfg ChaosConfig) (*ChaosTransport, error) {
	if next == nil {
		next = http.DefaultTransport
	}
	core, err := newChaosCore(cfg)
	if err != nil {
		return nil, err
	}
	return &ChaosTransport{chaosCore: core, next: next}, nil
}

// RoundTrip implements http.RoundTripper.
func (t *ChaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	fail, stall := t.roll()
	if fail {
		return nil, fmt.Errorf("httpmirror: injected fault for %s", req.URL.Path)
	}
	wait := t.cfg.Latency
	if stall {
		wait = t.cfg.StallFor
	}
	if wait > 0 {
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(wait):
		}
	}
	return t.next.RoundTrip(req)
}

// FaultInjector is HTTP middleware that makes a healthy origin
// misbehave: probabilistic 500s, added latency, stalls, and outage
// windows during which every request gets a 503. mocksource mounts it
// in front of the simulated source.
type FaultInjector struct {
	*chaosCore
	next http.Handler
}

// NewFaultInjector wraps next with fault injection.
func NewFaultInjector(next http.Handler, cfg ChaosConfig) (*FaultInjector, error) {
	core, err := newChaosCore(cfg)
	if err != nil {
		return nil, err
	}
	return &FaultInjector{chaosCore: core, next: next}, nil
}

// ServeHTTP implements http.Handler.
func (f *FaultInjector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.outage.Load() {
		f.faults.Add(1)
		http.Error(w, "injected outage", http.StatusServiceUnavailable)
		return
	}
	fail, stall := f.roll()
	if fail {
		http.Error(w, "injected fault", http.StatusInternalServerError)
		return
	}
	wait := f.cfg.Latency
	if stall {
		wait = f.cfg.StallFor
	}
	if wait > 0 {
		select {
		case <-r.Context().Done():
			return
		case <-time.After(wait):
		}
	}
	f.next.ServeHTTP(w, r)
}

// ScheduleOutage turns the outage on after start and off again after
// start+duration, from a background goroutine. It returns immediately;
// zero duration means no outage is scheduled.
func ScheduleOutage(c interface{ SetOutage(bool) }, start, duration time.Duration) {
	if duration <= 0 {
		return
	}
	go func() {
		time.Sleep(start)
		c.SetOutage(true)
		time.Sleep(duration)
		c.SetOutage(false)
	}()
}
