package httpmirror

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"freshen/internal/core"
)

// TestConditionalRefreshSaves304 drives a mirror over a conditional
// source with a frozen origin clock: every refresh must come back 304
// (the stored version is always current), costing zero body transfers,
// and each must still count as a change poll.
func TestConditionalRefreshSaves304(t *testing.T) {
	_, m := newTestPair(t, []float64{2, 1}, 2)
	if m.condSrc == nil {
		t.Fatal("SourceClient must advertise ConditionalSource")
	}
	for now := 1.0; now <= 5; now++ {
		if _, err := m.Step(now); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Status()
	if st.NotModified == 0 {
		t.Error("no refresh was answered 304 against a frozen origin")
	}
	if st.Transfers != 0 {
		t.Errorf("%d body transfers against a frozen origin, want 0", st.Transfers)
	}
	// The 304s are still polls: fetches grew past the seeding round.
	if st.Fetches <= st.Objects {
		t.Errorf("fetches = %d, want more than the %d seeds", st.Fetches, st.Objects)
	}
}

// TestConditionalRefreshTransfersChanges advances the origin so
// versions move, and checks the conditional path still lands the new
// bodies: a changed object arrives as a full 200 with the body in the
// same round trip.
func TestConditionalRefreshTransfersChanges(t *testing.T) {
	src, m := newTestPair(t, []float64{50, 50}, 4)
	src.Advance(3)
	for now := 1.0; now <= 3; now += 0.25 {
		if _, err := m.Step(now); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Status()
	if st.Transfers == 0 {
		t.Error("fast-changing origin produced no transfers through the conditional path")
	}
	for id := 0; id < 2; id++ {
		body, ver, err := m.Access(id)
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("object %d version %d", id, ver)
		if string(body) != want {
			t.Errorf("object %d: body %q does not match served version %d", id, body, ver)
		}
	}
}

// TestConditionalFallbackOnIgnoringOrigin points a mirror at an origin
// that advertises nothing conditional and answers every conditional
// GET with a full 200 of the version the mirror already holds. The
// first such answer must permanently revert the mirror to
// HEAD-then-GET — otherwise every poll pays a full transfer.
func TestConditionalFallbackOnIgnoringOrigin(t *testing.T) {
	var heads, gets int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/catalog":
			io.WriteString(w, `[{"id":0,"size":1}]`)
		default:
			// Ignores X-If-Version entirely: always a full 200.
			w.Header().Set("X-Version", "7")
			if r.Method == http.MethodHead {
				heads++
				return
			}
			gets++
			io.WriteString(w, "payload v7")
		}
	}))
	defer srv.Close()
	m, err := New(context.Background(), Config{
		Upstream:    NewSourceClient(srv.URL, srv.Client()),
		Plan:        core.Config{Bandwidth: 1},
		ReplanEvery: 10,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for now := 1.0; now <= 6; now++ {
		if _, err := m.Step(now); err != nil {
			t.Fatal(err)
		}
	}
	m.mu.Lock()
	off := m.condOff
	m.mu.Unlock()
	if !off {
		t.Error("mirror did not detect that the origin ignores conditions")
	}
	if st := m.Status(); st.NotModified != 0 {
		t.Errorf("counted %d not-modified polls against an unconditional origin", st.NotModified)
	}
	// After the revert the polls are HEADs again: the seeding GET plus
	// at most one burned conditional GET.
	if heads == 0 {
		t.Error("no HEAD polls after reverting to the unconditional protocol")
	}
	if gets > 2 {
		t.Errorf("%d full GETs; the conditional probe should burn at most one beyond seeding", gets)
	}
}

// TestMirrorServesSourceProtocol stands a SourceClient downstream of a
// mirror's own Handler — the composition hierarchy chains on — and
// exercises the full source protocol against it: catalog, HEAD
// version, conditional 304, and conditional miss.
func TestMirrorServesSourceProtocol(t *testing.T) {
	_, m := newTestPair(t, []float64{2, 1, 0.5}, 3)
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	down := NewSourceClient(srv.URL, srv.Client())
	ctx := context.Background()

	catalog, err := down.Catalog(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(catalog) != 3 || catalog[2].ID != 2 {
		t.Fatalf("catalog = %+v", catalog)
	}
	ver, err := down.Version(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	body, gotVer, notMod, err := down.FetchIfNewer(ctx, 0, ver)
	if err != nil {
		t.Fatal(err)
	}
	if !notMod || body != nil || gotVer != ver {
		t.Errorf("conditional hit: notMod=%v body=%q ver=%d, want 304 echoing %d", notMod, body, gotVer, ver)
	}
	body, gotVer, notMod, err = down.FetchIfNewer(ctx, 0, ver-1)
	if err != nil {
		t.Fatal(err)
	}
	if notMod || len(body) == 0 || gotVer != ver {
		t.Errorf("conditional miss: notMod=%v body=%q ver=%d", notMod, body, gotVer)
	}
	// Raw protocol check: a conditional hit carries no body bytes and
	// the 304 status, exactly what the origin protocol promises.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/object/0", nil)
	req.Header.Set("X-If-Version", strconv.Itoa(ver))
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("conditional hit returned %s", resp.Status)
	}
	if resp.Header.Get("X-Version") != strconv.Itoa(ver) {
		t.Errorf("304 carries X-Version %q, want %d", resp.Header.Get("X-Version"), ver)
	}
}
