package httpmirror

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"freshen/internal/core"
)

// TestAccessNotFoundPreallocated pins the satellite fix for the miss
// path: every out-of-range Access returns the same preallocated error
// value (no per-request allocation for hostile traffic), and that
// value still matches ErrNotFound.
func TestAccessNotFoundPreallocated(t *testing.T) {
	_, m := newTestPair(t, []float64{1, 1}, 2)
	_, _, err1 := m.Access(-1)
	_, _, err2 := m.Access(99)
	if err1 == nil || err2 == nil {
		t.Fatal("out-of-range Access must fail")
	}
	if err1 != err2 {
		t.Errorf("miss errors are distinct values: %p vs %p", err1, err2)
	}
	if !errors.Is(err1, ErrNotFound) {
		t.Errorf("miss error does not match ErrNotFound: %v", err1)
	}
	if n := testing.AllocsPerRun(100, func() {
		m.Access(99)
	}); n != 0 {
		t.Errorf("not-found Access allocates %v per op, want 0", n)
	}
}

// TestAccessZeroAllocs asserts the hot-path contract: a hit performs
// zero allocations.
func TestAccessZeroAllocs(t *testing.T) {
	_, m := newTestPair(t, []float64{2, 1, 0.5}, 3)
	if n := testing.AllocsPerRun(100, func() {
		if _, _, err := m.Access(1); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("Access allocates %v per op, want 0", n)
	}
}

// TestAccessLockFree asserts the other half of the hot-path contract:
// Access and the /object route complete while both mirror locks are
// held by someone else (a refresh commit, a snapshot fsync, a
// replan). Under the old mutex path both calls would block here
// forever; the test fails by timeout instead of deadlocking the whole
// test binary.
func TestAccessLockFree(t *testing.T) {
	_, m := newTestPair(t, []float64{2, 1}, 2)
	h := m.Handler()

	m.stepMu.Lock()
	m.mu.Lock()
	defer m.mu.Unlock()
	defer m.stepMu.Unlock()

	done := make(chan error, 1)
	go func() {
		if _, _, err := m.Access(0); err != nil {
			done <- err
			return
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/object/1", nil))
		if rec.Code != http.StatusOK {
			done <- fmt.Errorf("GET /object/1 = %d, want 200", rec.Code)
			return
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read path blocked while the mirror locks were held: not lock-free")
	}
}

// TestObjectHandlerAllocs bounds the full HTTP route. The mirror's own
// work is allocation-free; what remains is the http.ServeMux match and
// ResponseWriter plumbing, which this pins so a regression (a new
// fmt.Errorf, a fresh header slice) shows up as a failing number, not
// a slow dashboard. The contract covers every hot serving shape: plain
// reads, the downstream change poll (HEAD), conditional fetches both
// ways (304 and full 200), and persist-degraded serving, whose
// X-Mirror-Mode value is pre-built. (Source-degraded responses are
// exempt: X-Staleness-Periods is formatted per request.)
func TestObjectHandlerAllocs(t *testing.T) {
	_, m := newTestPair(t, []float64{2, 1}, 2)
	h := m.Handler()
	_, ver, err := m.Access(0)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name     string
		method   string
		ifVer    string
		degraded bool
	}{
		{name: "get", method: http.MethodGet},
		{name: "head", method: http.MethodHead},
		{name: "conditional hit (304)", method: http.MethodGet, ifVer: strconv.Itoa(ver)},
		{name: "conditional miss (200)", method: http.MethodGet, ifVer: strconv.Itoa(ver + 1)},
		{name: "persist-degraded get", method: http.MethodGet, degraded: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m.mu.Lock()
			if tc.degraded {
				m.machine.ForcePersistDegraded(m.now)
			} else {
				m.machine.PersistSucceeded()
			}
			m.publishModeLocked()
			m.mu.Unlock()
			req := httptest.NewRequest(tc.method, "/object/0", nil)
			if tc.ifVer != "" {
				req.Header.Set("X-If-Version", tc.ifVer)
			}
			rec := httptest.NewRecorder()
			// Warm the pools (statusWriter, mux internals) before measuring.
			h.ServeHTTP(rec, req)
			n := testing.AllocsPerRun(200, func() {
				rec.Body.Reset()
				h.ServeHTTP(rec, req)
			})
			if n != 0 {
				t.Errorf("%s /object/0 (%s) allocates %v per op, want 0", tc.method, tc.name, n)
			}
		})
	}
}

// TestQuarantinedCountTracksTransitions drives quarantine and recovery
// transitions and checks the O(1) count the status endpoints now use
// against a scan of the health slice.
func TestQuarantinedCountTracksTransitions(t *testing.T) {
	_, m := newTestPair(t, []float64{1, 1, 1}, 3)
	failAll := func(id int, times int) {
		m.mu.Lock()
		for i := 0; i < times; i++ {
			m.noteOutcomeLocked(id, m.now, fmt.Errorf("induced failure"))
		}
		m.mu.Unlock()
	}
	recover := func(id int) {
		m.mu.Lock()
		m.noteOutcomeLocked(id, m.now, nil)
		m.mu.Unlock()
	}
	check := func(want int) {
		t.Helper()
		m.mu.Lock()
		scan := 0
		for i := range m.health {
			if m.health[i].quarantined {
				scan++
			}
		}
		got := m.quarantined
		m.mu.Unlock()
		if got != scan {
			t.Fatalf("quarantined count %d != scan %d", got, scan)
		}
		if got != want {
			t.Fatalf("quarantined = %d, want %d", got, want)
		}
		if st := m.Status(); st.Quarantined != want {
			t.Fatalf("Status().Quarantined = %d, want %d", st.Quarantined, want)
		}
		if rd := m.Readiness(); rd.Quarantined != want {
			t.Fatalf("Readiness().Quarantined = %d, want %d", rd.Quarantined, want)
		}
		if h := m.Health(); len(h.Quarantined) != want {
			t.Fatalf("Health().Quarantined = %v, want %d ids", h.Quarantined, want)
		}
	}

	check(0)
	failAll(0, 3) // default QuarantineAfter is 3
	check(1)
	failAll(0, 2) // already quarantined: no double count
	check(1)
	failAll(2, 3)
	check(2)
	recover(0)
	check(1)
	recover(0) // healthy recovery is not a transition
	check(1)
	recover(2)
	check(0)
}

// TestAccessCountsDrainExactly checks that the striped counters
// preserve the access-learning and status semantics of the old locked
// counters: Status sees every access immediately, and a replan's
// profile learning sees exactly the drained per-object counts.
func TestAccessCountsDrainExactly(t *testing.T) {
	src, m := newTestPair(t, []float64{1, 1, 1, 1}, 4)
	before := m.Status().Accesses

	// A skewed access pattern: object 0 hot, object 3 untouched.
	for i := 0; i < 60; i++ {
		if _, _, err := m.Access(i % 3 % 2); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Status().Accesses - before; got != 60 {
		t.Fatalf("Status().Accesses grew by %d, want 60 (undrained stripes must still count)", got)
	}

	// Cross the replan cadence so Step drains and learns.
	src.Advance(11)
	if _, err := m.Step(11); err != nil {
		t.Fatal(err)
	}
	m.mu.Lock()
	drained := 0
	for i := range m.copies {
		drained += m.copies[i].accesses
	}
	p0, p3 := m.elems[0].AccessProb, m.elems[3].AccessProb
	m.mu.Unlock()
	if drained != 60 {
		t.Fatalf("drained per-object accesses = %d, want 60", drained)
	}
	if p0 <= p3 {
		t.Errorf("profile learning lost the skew: p0=%v <= p3=%v", p0, p3)
	}
	if got := m.Status().Accesses - before; got != 60 {
		t.Fatalf("Status().Accesses after drain = %d, want still 60", got)
	}
}

// TestServeSnapshotNotTorn is the linearizability stress test: readers
// hammer Access while the refresh pipeline commits new bodies, replans
// rebuild the schedule, and FlushSnapshot runs its fsyncs. The
// simulated source writes bodies of the form "object N version V", so
// any torn read — a body from one commit paired with a version from
// another — is detected by string comparison. Run under -race this
// also proves the publication protocol is data-race free.
func TestServeSnapshotNotTorn(t *testing.T) {
	lambdas := make([]float64, 16)
	for i := range lambdas {
		lambdas[i] = 8 // fast churn: many transfers per period
	}
	f := newFaultySource(t, lambdas)
	dir := t.TempDir()
	m, _ := newPersistMirror(t, f.srv.URL, f.srv.Client(), dir, 1, 1, func(c *Config) {
		c.Plan = core.Config{Bandwidth: 64}
		c.ReplanEvery = 1
	})

	stop := make(chan struct{})
	var readers, churn sync.WaitGroup
	errs := make(chan error, 64)

	// Readers: every body must match its version exactly. Periodic
	// Gosched keeps the spinning readers from starving the refresh
	// pipeline on small CI machines.
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := (r + i) % len(lambdas)
				body, ver, err := m.Access(id)
				if err != nil {
					errs <- err
					return
				}
				want := fmt.Sprintf("object %d version %d", id, ver)
				if string(body) != want {
					errs <- fmt.Errorf("torn read: got %q with version %d", body, ver)
					return
				}
				if i%1024 == 0 {
					runtime.Gosched()
				}
			}
		}(r)
	}
	// Writer: the refresh pipeline on a fast clock.
	churn.Add(1)
	go func() {
		defer churn.Done()
		for step := 1; step <= 24; step++ {
			tm := 0.25 * float64(step)
			f.src.Advance(tm)
			if _, err := m.Step(tm); err != nil {
				errs <- err
				return
			}
		}
	}()
	// Churn: snapshots (fsync under stepMu) and forced replans.
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; i < 8; i++ {
			if err := m.FlushSnapshot(); err != nil {
				errs <- err
				return
			}
			if err := m.ForceReplan(); err != nil {
				errs <- err
				return
			}
		}
	}()

	// Wait for the refresh/snapshot churn to finish, then release the
	// readers. The timeout turns a stuck pipeline into a test failure
	// instead of a binary-wide deadline kill.
	doneChurn := make(chan struct{})
	go func() {
		churn.Wait()
		close(doneChurn)
	}()
	select {
	case <-doneChurn:
	case <-time.After(60 * time.Second):
		t.Error("stress run did not complete in time")
	}
	close(stop)
	readers.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The access totals recorded under fire must survive a final drain.
	st := m.Status()
	m.mu.Lock()
	m.acc.drainInto(m.copies)
	perObj := 0
	for i := range m.copies {
		perObj += m.copies[i].accesses
	}
	m.mu.Unlock()
	if perObj > st.Accesses {
		t.Errorf("per-object counts (%d) exceed the global total (%d)", perObj, st.Accesses)
	}
}

// TestObjectRouteVersionHeader covers both X-Version paths: a cached
// small version and an uncached large one.
func TestObjectRouteVersionHeader(t *testing.T) {
	_, m := newTestPair(t, []float64{1}, 1)
	// Force a large version directly; the handler must fall back to
	// formatting it.
	m.mu.Lock()
	m.copies[0].version = 123456
	m.publishServingLocked()
	m.mu.Unlock()
	h := m.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/object/0", nil))
	if got := rec.Header().Get("X-Version"); got != "123456" {
		t.Errorf("X-Version = %q, want 123456", got)
	}
	m.mu.Lock()
	m.copies[0].version = 7
	m.publishServingLocked()
	m.mu.Unlock()
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/object/0", nil))
	if got := rec.Header().Get("X-Version"); got != "7" {
		t.Errorf("X-Version = %q, want 7", got)
	}
}

// mutexMirror replicates the pre-RCU serving path — every read takes
// the state mutex and mutates the shared counters under it — so the
// mutex-vs-RCU comparison in EXPERIMENTS.md stays reproducible from
// this file alone.
type mutexMirror struct {
	mu       sync.Mutex
	copies   []copyState
	accesses int
}

func (m *mutexMirror) Access(id int) ([]byte, int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id < 0 || id >= len(m.copies) {
		return nil, 0, fmt.Errorf("%w: object %d outside [0, %d)", ErrNotFound, id, len(m.copies))
	}
	c := &m.copies[id]
	c.accesses++
	m.accesses++
	return c.body, c.version, nil
}

func newBenchMirror(b *testing.B, n int) *Mirror {
	b.Helper()
	lambdas := make([]float64, n)
	for i := range lambdas {
		lambdas[i] = 1
	}
	src, err := NewSimulatedSource(lambdas, nil, 1)
	if err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(src.Handler())
	b.Cleanup(srv.Close)
	m, err := New(context.Background(), Config{
		Upstream: NewSourceClient(srv.URL, srv.Client()),
		Plan:     core.Config{Bandwidth: float64(n) / 4},
		Seed:     1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkAccess is the serial hot-path cost: one snapshot load, a
// bounds check, two striped increments.
func BenchmarkAccess(b *testing.B) {
	m := newBenchMirror(b, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.Access(i & 511); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAccessParallel is the contended case the RCU path exists
// for: every core reading at once.
func BenchmarkAccessParallel(b *testing.B) {
	m := newBenchMirror(b, 512)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, _, err := m.Access(i & 511); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkAccessMutexBaseline is the old locked read path (frozen
// above as mutexMirror), serial.
func BenchmarkAccessMutexBaseline(b *testing.B) {
	m := &mutexMirror{copies: make([]copyState, 512)}
	for i := range m.copies {
		m.copies[i].body = []byte("object body")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.Access(i & 511); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAccessMutexBaselineParallel is the old locked read path
// under the same all-cores contention as BenchmarkAccessParallel —
// the headline number for the EXPERIMENTS.md table.
func BenchmarkAccessMutexBaselineParallel(b *testing.B) {
	m := &mutexMirror{copies: make([]copyState, 512)}
	for i := range m.copies {
		m.copies[i].body = []byte("object body")
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, _, err := m.Access(i & 511); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkAccessDuringCommits measures the read path while a writer
// continuously publishes new snapshots — reads during commit must not
// stall.
func BenchmarkAccessDuringCommits(b *testing.B) {
	m := newBenchMirror(b, 512)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			m.mu.Lock()
			m.copies[0].version++
			m.publishServingLocked()
			m.mu.Unlock()
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, _, err := m.Access(i & 511); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkAccessMutexBaselineDuringCommits is the mutex counterpart
// of BenchmarkAccessDuringCommits: the writer does the same O(n)
// commit work, but under the lock every reader needs — so reads stall
// behind each commit instead of sailing past it.
func BenchmarkAccessMutexBaselineDuringCommits(b *testing.B) {
	m := &mutexMirror{copies: make([]copyState, 512)}
	for i := range m.copies {
		m.copies[i].body = []byte("object body")
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		views := make([]copyView, len(m.copies))
		for {
			select {
			case <-stop:
				return
			default:
			}
			m.mu.Lock()
			m.copies[0].version++
			for i := range m.copies {
				views[i] = copyView{body: m.copies[i].body, version: m.copies[i].version}
			}
			m.mu.Unlock()
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, _, err := m.Access(i & 511); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkObjectHandler is the full HTTP route against a recycled
// recorder: mux match, middleware, Access, header, body write.
func BenchmarkObjectHandler(b *testing.B) {
	m := newBenchMirror(b, 512)
	h := m.Handler()
	req := httptest.NewRequest(http.MethodGet, "/object/7", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req) // warm pools
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Body.Reset()
		h.ServeHTTP(rec, req)
	}
	if rec.Code != http.StatusOK {
		b.Fatalf("status %d", rec.Code)
	}
}
