package httpmirror

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// SourceClient talks the source protocol against an upstream base URL.
type SourceClient struct {
	base string
	http *http.Client
}

// NewSourceClient creates a client for the given base URL (e.g.
// "http://origin:8080"). client may be nil for http.DefaultClient.
func NewSourceClient(base string, client *http.Client) *SourceClient {
	if client == nil {
		client = http.DefaultClient
	}
	return &SourceClient{base: strings.TrimRight(base, "/"), http: client}
}

// Catalog fetches the upstream object list.
func (c *SourceClient) Catalog() ([]CatalogEntry, error) {
	resp, err := c.http.Get(c.base + "/catalog")
	if err != nil {
		return nil, fmt.Errorf("httpmirror: catalog: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("httpmirror: catalog: upstream returned %s", resp.Status)
	}
	var entries []CatalogEntry
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		return nil, fmt.Errorf("httpmirror: catalog: %w", err)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("httpmirror: upstream catalog is empty")
	}
	return entries, nil
}

// Fetch downloads one object, returning its body and version.
func (c *SourceClient) Fetch(id int) (body []byte, version int, err error) {
	resp, err := c.http.Get(fmt.Sprintf("%s/object/%d", c.base, id))
	if err != nil {
		return nil, 0, fmt.Errorf("httpmirror: fetch %d: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("httpmirror: fetch %d: upstream returned %s", id, resp.Status)
	}
	version, err = strconv.Atoi(resp.Header.Get("X-Version"))
	if err != nil {
		return nil, 0, fmt.Errorf("httpmirror: fetch %d: bad X-Version %q", id, resp.Header.Get("X-Version"))
	}
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, fmt.Errorf("httpmirror: fetch %d: %w", id, err)
	}
	return body, version, nil
}

// Version checks an object's current version without transferring the
// body (HEAD) — the cheap change poll.
func (c *SourceClient) Version(id int) (int, error) {
	resp, err := c.http.Head(fmt.Sprintf("%s/object/%d", c.base, id))
	if err != nil {
		return 0, fmt.Errorf("httpmirror: head %d: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("httpmirror: head %d: upstream returned %s", id, resp.Status)
	}
	v, err := strconv.Atoi(resp.Header.Get("X-Version"))
	if err != nil {
		return 0, fmt.Errorf("httpmirror: head %d: bad X-Version %q", id, resp.Header.Get("X-Version"))
	}
	return v, nil
}
