package httpmirror

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// RetryPolicy bounds how a SourceClient rides out transient upstream
// failures. Every request gets a per-attempt timeout; 5xx responses,
// timeouts and connection errors are retried with exponential backoff
// plus full jitter, capped at MaxAttempts per call. 4xx responses and
// malformed payloads are permanent and never retried.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per call (first attempt
	// included); 0 means 3. 1 disables retries.
	MaxAttempts int
	// Timeout bounds each individual attempt; 0 means 5s.
	Timeout time.Duration
	// BaseBackoff is the delay before the first retry; 0 means 50ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth; 0 means 2s.
	MaxBackoff time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.Timeout <= 0 {
		p.Timeout = 5 * time.Second
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 50 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 2 * time.Second
	}
	return p
}

// backoff returns the sleep before retry number n (n = 1 for the first
// retry): exponential growth with full jitter, capped at MaxBackoff.
func (p RetryPolicy) backoff(n int, rng *rand.Rand) time.Duration {
	d := p.BaseBackoff << uint(n-1)
	if d > p.MaxBackoff || d <= 0 { // <= 0 guards shift overflow
		d = p.MaxBackoff
	}
	return time.Duration(rng.Int63n(int64(d)) + 1)
}

// permanentError marks a failure that retrying cannot fix (4xx,
// malformed payload).
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// statusError reports a non-200 upstream response; 5xx and 429 are
// retryable, everything else is permanent.
type statusError struct {
	code   int
	status string
}

func (e *statusError) Error() string { return "upstream returned " + e.status }

// SourceClient talks the source protocol against an upstream base URL.
// All calls are context-aware and retry transient failures per the
// client's RetryPolicy. It is safe for concurrent use.
type SourceClient struct {
	base   string
	http   *http.Client
	policy RetryPolicy

	mu  sync.Mutex
	rng *rand.Rand

	retries  atomic.Int64 // attempts beyond the first, across all calls
	failures atomic.Int64 // calls that exhausted every attempt
}

// NewSourceClient creates a client for the given base URL (e.g.
// "http://origin:8080"). client may be nil for http.DefaultClient. The
// default RetryPolicy applies; use SetRetryPolicy to tune it.
func NewSourceClient(base string, client *http.Client) *SourceClient {
	if client == nil {
		client = http.DefaultClient
	}
	return &SourceClient{
		base:   strings.TrimRight(base, "/"),
		http:   client,
		policy: RetryPolicy{}.withDefaults(),
		rng:    rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// SetRetryPolicy replaces the client's retry policy (zero fields take
// defaults). Call before sharing the client across goroutines.
func (c *SourceClient) SetRetryPolicy(p RetryPolicy) { c.policy = p.withDefaults() }

// Retries returns how many retry attempts the client has made in total.
func (c *SourceClient) Retries() int64 { return c.retries.Load() }

// Failures returns how many calls exhausted every attempt.
func (c *SourceClient) Failures() int64 { return c.failures.Load() }

// retryable reports whether an attempt's failure is worth retrying.
func retryable(err error) bool {
	var perm *permanentError
	if errors.As(err, &perm) {
		return false
	}
	var se *statusError
	if errors.As(err, &se) {
		return se.code >= 500 || se.code == http.StatusTooManyRequests
	}
	// Connection errors, timeouts, and deadline expiry are transient;
	// the caller cancelling is not.
	return !errors.Is(err, context.Canceled)
}

// do runs one protocol call with per-attempt timeouts and retries.
func (c *SourceClient) do(ctx context.Context, attempt func(context.Context) error) error {
	var err error
	for try := 1; ; try++ {
		actx, cancel := context.WithTimeout(ctx, c.policy.Timeout)
		err = attempt(actx)
		cancel()
		if err == nil {
			return nil
		}
		if try >= c.policy.MaxAttempts || !retryable(err) || ctx.Err() != nil {
			c.failures.Add(1)
			return err
		}
		c.retries.Add(1)
		c.mu.Lock()
		sleep := c.policy.backoff(try, c.rng)
		c.mu.Unlock()
		select {
		case <-ctx.Done():
			c.failures.Add(1)
			return err
		case <-time.After(sleep):
		}
	}
}

// get issues one GET/HEAD and checks the status code.
func (c *SourceClient) get(ctx context.Context, method, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, url, nil)
	if err != nil {
		return nil, &permanentError{err}
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		return nil, &statusError{code: resp.StatusCode, status: resp.Status}
	}
	return resp, nil
}

// Catalog fetches the upstream object list.
func (c *SourceClient) Catalog(ctx context.Context) ([]CatalogEntry, error) {
	var entries []CatalogEntry
	err := c.do(ctx, func(ctx context.Context) error {
		resp, err := c.get(ctx, http.MethodGet, c.base+"/catalog")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		entries = entries[:0]
		if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
			return &permanentError{err}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("httpmirror: catalog: %w", err)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("httpmirror: upstream catalog is empty")
	}
	return entries, nil
}

// Fetch downloads one object, returning its body and version.
func (c *SourceClient) Fetch(ctx context.Context, id int) (body []byte, version int, err error) {
	err = c.do(ctx, func(ctx context.Context) error {
		resp, err := c.get(ctx, http.MethodGet, fmt.Sprintf("%s/object/%d", c.base, id))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		v, err := strconv.Atoi(resp.Header.Get("X-Version"))
		if err != nil {
			return &permanentError{fmt.Errorf("bad X-Version %q", resp.Header.Get("X-Version"))}
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return err // truncated body: transient
		}
		body, version = b, v
		return nil
	})
	if err != nil {
		return nil, 0, fmt.Errorf("httpmirror: fetch %d: %w", id, err)
	}
	return body, version, nil
}

// FetchIfNewer implements ConditionalSource: one conditional GET with
// the caller's last-seen version in X-If-Version. An upstream that
// still holds that version answers 304 with no body (notModified true,
// version echoing the current one); any newer version comes back as a
// full 200. Against an origin that ignores the condition this behaves
// exactly like Fetch — the caller detects that by a 200 carrying the
// version it already has.
func (c *SourceClient) FetchIfNewer(ctx context.Context, id, have int) (body []byte, version int, notModified bool, err error) {
	err = c.do(ctx, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, fmt.Sprintf("%s/object/%d", c.base, id), nil)
		if err != nil {
			return &permanentError{err}
		}
		req.Header.Set("X-If-Version", strconv.Itoa(have))
		resp, err := c.http.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotModified {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			return &statusError{code: resp.StatusCode, status: resp.Status}
		}
		v, err := strconv.Atoi(resp.Header.Get("X-Version"))
		if err != nil {
			return &permanentError{fmt.Errorf("bad X-Version %q", resp.Header.Get("X-Version"))}
		}
		if resp.StatusCode == http.StatusNotModified {
			body, version, notModified = nil, v, true
			return nil
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return err // truncated body: transient
		}
		body, version, notModified = b, v, false
		return nil
	})
	if err != nil {
		return nil, 0, false, fmt.Errorf("httpmirror: conditional fetch %d: %w", id, err)
	}
	return body, version, notModified, nil
}

// Version checks an object's current version without transferring the
// body (HEAD) — the cheap change poll.
func (c *SourceClient) Version(ctx context.Context, id int) (int, error) {
	var version int
	err := c.do(ctx, func(ctx context.Context) error {
		resp, err := c.get(ctx, http.MethodHead, fmt.Sprintf("%s/object/%d", c.base, id))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		v, err := strconv.Atoi(resp.Header.Get("X-Version"))
		if err != nil {
			return &permanentError{fmt.Errorf("bad X-Version %q", resp.Header.Get("X-Version"))}
		}
		version = v
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("httpmirror: head %d: %w", id, err)
	}
	return version, nil
}
