// Package httpmirror turns the planning library into a runnable
// mirror service: a Mirror fetches objects from an upstream Source
// over HTTP on the schedule a plan prescribes, serves local copies,
// learns the master profile from its own access log, estimates
// per-object change rates from what its refreshes observe (every fetch
// doubles as a change poll), and re-plans periodically — the full loop
// the paper's system diagram implies for a deployment rather than a
// simulation.
//
// The source protocol is deliberately minimal so any origin can
// implement it:
//
//	GET  /catalog      -> JSON [{"id":0,"size":1}, ...]
//	GET  /object/{id}  -> body with X-Version header
//	HEAD /object/{id}  -> X-Version header only (cheap change check)
//
// SimulatedSource implements it with Poisson-updating objects and
// backs both the mocksource command and the package tests.
package httpmirror
