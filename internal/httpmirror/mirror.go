package httpmirror

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"freshen/internal/core"
	"freshen/internal/estimate"
	"freshen/internal/freshness"
	"freshen/internal/schedule"
)

// Config assembles a mirror service.
type Config struct {
	// Upstream is the origin to mirror.
	Upstream *SourceClient
	// Plan configures the planner; Plan.Bandwidth is the refresh
	// budget per period.
	Plan core.Config
	// PriorLambda seeds change-rate knowledge before the mirror's own
	// polls accumulate; 0 means 1 change/period.
	PriorLambda float64
	// ReplanEvery is the replanning cadence in periods; 0 means 5.
	ReplanEvery float64
	// ProfileSmoothing is the Laplace pseudo-count applied when the
	// profile is learned from the access log; 0 means 1.
	ProfileSmoothing float64
	// Seed drives refresh phases.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.PriorLambda == 0 {
		c.PriorLambda = 1
	}
	if c.ReplanEvery == 0 {
		c.ReplanEvery = 5
	}
	if c.ProfileSmoothing == 0 {
		c.ProfileSmoothing = 1
	}
	return c
}

// copyState is one locally held object.
type copyState struct {
	body      []byte
	version   int
	fetchedAt float64
	lastPoll  float64
	fetches   int
	accesses  int
}

// Mirror is the running service: local copies, the live plan, the
// refresh iterator, and the learning state. Methods are safe for
// concurrent use.
type Mirror struct {
	mu         sync.Mutex
	cfg        Config
	elems      []freshness.Element
	copies     []copyState
	tracker    *estimate.Tracker
	plan       core.Plan
	iter       *schedule.Iterator
	iterBase   float64 // m.now at the last iterator rebuild
	lastReplan float64
	now        float64
	replans    int
	accesses   int
	transfers  int
}

// New creates a mirror: it pulls the upstream catalog, seeds every
// local copy with an initial fetch, and computes the first plan under
// a uniform profile and the prior change rate.
func New(cfg Config) (*Mirror, error) {
	if cfg.Upstream == nil {
		return nil, fmt.Errorf("httpmirror: Upstream is required")
	}
	cfg = cfg.withDefaults()
	catalog, err := cfg.Upstream.Catalog()
	if err != nil {
		return nil, err
	}
	n := len(catalog)
	m := &Mirror{
		cfg:    cfg,
		elems:  make([]freshness.Element, n),
		copies: make([]copyState, n),
	}
	m.tracker, err = estimate.NewTracker(n)
	if err != nil {
		return nil, err
	}
	for i, entry := range catalog {
		if entry.ID != i {
			return nil, fmt.Errorf("httpmirror: catalog ids must be dense, got %d at position %d", entry.ID, i)
		}
		m.elems[i] = freshness.Element{
			ID:         entry.ID,
			Lambda:     cfg.PriorLambda,
			AccessProb: 1 / float64(n),
			Size:       entry.Size,
		}
		body, ver, err := cfg.Upstream.Fetch(entry.ID)
		if err != nil {
			return nil, fmt.Errorf("httpmirror: seeding copy %d: %w", entry.ID, err)
		}
		m.copies[i] = copyState{body: body, version: ver, fetches: 1}
	}
	if err := m.replanLocked(); err != nil {
		return nil, err
	}
	return m, nil
}

// replanLocked recomputes the plan from the current element knowledge
// and rebuilds the refresh iterator. Callers hold m.mu (or are New).
func (m *Mirror) replanLocked() error {
	plan, err := core.MakePlan(m.elems, m.cfg.Plan)
	if err != nil {
		return err
	}
	iter, err := schedule.NewIterator(plan.Freqs, true, m.cfg.Seed+int64(m.replans))
	if err != nil {
		return err
	}
	m.plan = plan
	m.iter = iter
	m.iterBase = m.now
	m.lastReplan = m.now
	m.replans++
	return nil
}

// Step advances the mirror clock to now (in periods), performing every
// refresh that came due and re-planning on cadence. It returns the
// number of refreshes performed.
func (m *Mirror) Step(now float64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if now < m.now {
		return 0, fmt.Errorf("httpmirror: clock moved backwards (%v < %v)", now, m.now)
	}
	refreshes := 0
	for {
		ev, ok := m.iter.Peek()
		if !ok || m.iterBase+ev.Time > now {
			break
		}
		m.iter.Next()
		due := m.iterBase + ev.Time
		if err := m.refreshLocked(ev.Element, due); err != nil {
			return refreshes, err
		}
		refreshes++
	}
	m.now = now
	if now-m.lastReplan >= m.cfg.ReplanEvery {
		m.learnLocked()
		if err := m.replanLocked(); err != nil {
			return refreshes, err
		}
	}
	return refreshes, nil
}

// refreshLocked refreshes one object conditionally: a HEAD reveals the
// upstream version, and the body is transferred only when it differs
// from the stored copy — the refresh always counts as a change poll,
// but an unchanged object costs no body transfer.
func (m *Mirror) refreshLocked(id int, at float64) error {
	c := &m.copies[id]
	ver, err := m.cfg.Upstream.Version(id)
	if err != nil {
		return fmt.Errorf("httpmirror: polling %d: %w", id, err)
	}
	changed := ver != c.version
	if elapsed := at - c.lastPoll; elapsed > 0 {
		if err := m.tracker.Record(id, elapsed, changed); err != nil {
			return err
		}
	}
	c.lastPoll = at
	c.fetches++
	if !changed {
		return nil
	}
	body, ver, err := m.cfg.Upstream.Fetch(id)
	if err != nil {
		return fmt.Errorf("httpmirror: refreshing %d: %w", id, err)
	}
	c.body = body
	c.version = ver
	c.fetchedAt = at
	m.transfers++
	return nil
}

// learnLocked folds the access log and poll history into the element
// knowledge the next plan uses.
func (m *Mirror) learnLocked() {
	// Profile: Laplace-smoothed access counts.
	total := m.cfg.ProfileSmoothing * float64(len(m.elems))
	for i := range m.copies {
		total += float64(m.copies[i].accesses)
	}
	for i := range m.elems {
		m.elems[i].AccessProb = (float64(m.copies[i].accesses) + m.cfg.ProfileSmoothing) / total
	}
	// Change rates: MLE per element, prior where unpolled.
	if ests, err := m.tracker.Estimates(m.cfg.PriorLambda); err == nil {
		for i, l := range ests {
			m.elems[i].Lambda = l
		}
	}
}

// Run drives the refresh loop against the wall clock, mapping one
// scheduling period to periodLength, until ctx is cancelled (which is
// a normal shutdown, reported as nil). Refresh errors are returned
// immediately; an operator that prefers to ride out upstream blips
// should wrap Run in its own retry loop.
func (m *Mirror) Run(ctx context.Context, periodLength time.Duration) error {
	if periodLength <= 0 {
		return fmt.Errorf("httpmirror: period length must be positive, got %v", periodLength)
	}
	tick := periodLength / 100
	if tick <= 0 {
		tick = time.Millisecond
	}
	// Resume from the mirror's current clock so a restarted Run (after
	// an upstream error) never drives time backwards.
	base := m.Status().Now
	start := time.Now()
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C:
			now := base + time.Since(start).Seconds()/periodLength.Seconds()
			if _, err := m.Step(now); err != nil {
				return err
			}
		}
	}
}

// Access serves one local copy, recording the access for profile
// learning. It returns the stored body and version.
func (m *Mirror) Access(id int) (body []byte, version int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id < 0 || id >= len(m.copies) {
		return nil, 0, fmt.Errorf("httpmirror: object %d outside [0, %d)", id, len(m.copies))
	}
	c := &m.copies[id]
	c.accesses++
	m.accesses++
	return c.body, c.version, nil
}

// Status is the mirror's observable state.
type Status struct {
	Objects       int     `json:"objects"`
	Now           float64 `json:"now_periods"`
	Accesses      int     `json:"accesses"`
	Fetches       int     `json:"fetches"`
	Transfers     int     `json:"transfers"`
	Replans       int     `json:"replans"`
	PlannedPF     float64 `json:"planned_perceived_freshness"`
	PlannedAvg    float64 `json:"planned_average_freshness"`
	BandwidthUsed float64 `json:"bandwidth_used"`
	Strategy      string  `json:"strategy"`
}

// Status reports the mirror's current state.
func (m *Mirror) Status() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	fetches := 0
	for i := range m.copies {
		fetches += m.copies[i].fetches
	}
	return Status{
		Objects:       len(m.copies),
		Now:           m.now,
		Accesses:      m.accesses,
		Fetches:       fetches,
		Transfers:     m.transfers,
		Replans:       m.replans,
		PlannedPF:     m.plan.Perceived,
		PlannedAvg:    m.plan.AvgFreshness,
		BandwidthUsed: m.plan.BandwidthUsed,
		Strategy:      m.plan.Strategy.String(),
	}
}

// Plan returns the current plan.
func (m *Mirror) Plan() core.Plan {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.plan
}

// ForceReplan learns from the current logs and re-plans immediately.
func (m *Mirror) ForceReplan() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.learnLocked()
	return m.replanLocked()
}

// Handler serves the mirror API: GET /object/{id}, GET /status,
// POST /replan.
func (m *Mirror) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/object/", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		id, err := strconv.Atoi(strings.TrimPrefix(r.URL.Path, "/object/"))
		if err != nil {
			http.Error(w, "bad object id", http.StatusBadRequest)
			return
		}
		body, ver, err := m.Access(id)
		if err != nil {
			http.Error(w, "no such object", http.StatusNotFound)
			return
		}
		w.Header().Set("X-Version", strconv.Itoa(ver))
		w.Write(body)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(m.Status()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/replan", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if err := m.ForceReplan(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}
