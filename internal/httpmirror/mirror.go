package httpmirror

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"freshen/internal/core"
	"freshen/internal/estimate"
	"freshen/internal/freshness"
	"freshen/internal/obs"
	"freshen/internal/persist"
	"freshen/internal/resilience"
	"freshen/internal/schedule"
)

// ErrNotFound reports an object id outside the mirror's catalog.
var ErrNotFound = errors.New("httpmirror: no such object")

// Config assembles a mirror service.
type Config struct {
	// Upstream is the origin to mirror. *SourceClient is the usual
	// implementation; the fleet layer substitutes a shard-scoped view
	// of a global source.
	Upstream Source
	// Plan configures the planner; Plan.Bandwidth is the refresh
	// budget per period.
	Plan core.Config
	// PriorLambda seeds change-rate knowledge before the mirror's own
	// polls accumulate; 0 means 1 change/period.
	PriorLambda float64
	// Estimator selects the change-rate estimator family (see
	// estimate.Kinds): "history" (default) re-solves the batch MLE over
	// full poll histories; "naive", "sa" and "mle" are O(1)-state
	// online estimators whose convergence state persists through
	// snapshots.
	Estimator string
	// ExploreFrac diverts this fraction of Plan.Bandwidth to probing
	// high-uncertainty elements: the explore slice is water-filled over
	// estimator uncertainty (see schedule.AllocateExplore) and its
	// frequencies are added on top of the exploit plan. 0 disables
	// exploration; values must stay below 0.9.
	ExploreFrac float64
	// FloorLambda is the lower bound applied to every learned change
	// rate, so a run of no-change polls can never starve an element of
	// refresh budget forever (the cold-start bias fix). 0 means
	// PriorLambda/10; negative disables the floor entirely.
	FloorLambda float64
	// TruthLambda, when non-nil, carries the workload's true change
	// rates (test builds only: simulated sources know them). The mirror
	// then exports freshen_estimator_lambda_rel_error, the mean
	// relative λ̂ error against this truth; production mirrors leave it
	// nil and the gauge reads -1.
	TruthLambda []float64
	// ReplanEvery is the replanning cadence in periods; 0 means 5.
	ReplanEvery float64
	// ProfileSmoothing is the Laplace pseudo-count applied when the
	// profile is learned from the access log; 0 means 1.
	ProfileSmoothing float64
	// Fault tunes the circuit breaker and quarantine (zero value:
	// sensible defaults; see FaultPolicy).
	Fault FaultPolicy
	// Overload tunes the adaptive concurrency limiter guarding the
	// object read path (zero value: enabled defaults; MaxInflight < 0
	// disables shedding). Health, readiness, status, and metrics
	// routes are never shed.
	Overload resilience.LimiterConfig
	// Degrade tunes the degraded-mode state machine (zero value:
	// sensible defaults; see resilience.ModeConfig).
	Degrade resilience.ModeConfig
	// ServeFaultLatency is a chaos knob: artificial latency added to
	// every admitted object read, inside the limiter's inflight
	// window. The lock-free read path is sub-microsecond, so real
	// overload (inflight exceeding the limit) needs either enormous
	// fan-in or a slowed handler; chaos tests use this to make the
	// shedding envelope reachable deterministically. 0 (production)
	// adds nothing.
	ServeFaultLatency time.Duration
	// Persist enables crash-safe state persistence when non-nil: the
	// mirror recovers its learned state from the store on boot,
	// journals every refresh outcome, and snapshots on the period
	// clock. The mirror owns neither opening nor closing the store.
	// Wrap a *persist.Store in a persist.FaultStore to chaos-test the
	// degradation envelope.
	Persist persist.Storer
	// SnapshotEvery is the snapshot cadence in periods; 0 means 5.
	// Only meaningful with Persist.
	SnapshotEvery float64
	// Metrics, when non-nil, registers the mirror's instrumentation on
	// the registry and mounts GET /metrics on the Handler. The same
	// registry can also carry solver and store series (see
	// solver.Instrument and persist.Store.Instrument).
	Metrics *obs.Registry
	// Logger receives the mirror's structured events (quarantine,
	// breaker, snapshot outcomes, replans); nil discards them.
	Logger *slog.Logger
	// Seed drives refresh phases.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.PriorLambda == 0 {
		c.PriorLambda = 1
	}
	if c.Estimator == "" {
		c.Estimator = estimate.KindHistory
	}
	if c.FloorLambda == 0 {
		c.FloorLambda = c.PriorLambda / 10
	} else if c.FloorLambda < 0 {
		c.FloorLambda = 0
	}
	if c.ReplanEvery == 0 {
		c.ReplanEvery = 5
	}
	if c.ProfileSmoothing == 0 {
		c.ProfileSmoothing = 1
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 5
	}
	c.Fault = c.Fault.withDefaults()
	return c
}

// copyState is one locally held object.
type copyState struct {
	body      []byte
	version   int
	fetchedAt float64
	lastPoll  float64
	fetches   int
	accesses  int
}

// Mirror is the running service: local copies, the live plan, the
// refresh iterator, the learning state, and the fault-tracking state
// (circuit breaker + per-element quarantine). Methods are safe for
// concurrent use.
//
// Locking: mu guards all mutable state and is never held across
// network I/O, so Access keeps serving while a refresh rides out
// retries or timeouts. stepMu serializes the refresh pipeline (Step,
// ForceReplan) against itself. The read path takes neither lock: it
// serves from the immutable snapshot behind serve and records into
// the striped counters in acc (see serve.go and DESIGN.md §11).
type Mirror struct {
	stepMu sync.Mutex
	mu     sync.Mutex

	// Lock-free serving state: the published snapshot readers load,
	// and the access accounting they write. serve is swapped under
	// m.mu whenever a body or version changes; acc is drained under
	// m.mu at period boundaries.
	serve atomic.Pointer[serveSnapshot]
	acc   *accessCounters

	cfg        Config
	condSrc    ConditionalSource // non-nil when the upstream answers conditional fetches
	condOff    bool              // sticky: the origin demonstrably ignores the condition
	upHealth   UpstreamHealth    // non-nil when the upstream is itself a mirror tier
	elems      []freshness.Element
	copies     []copyState
	health     []elemHealth
	brk        breaker
	tracker    *estimate.Tracker
	est        estimate.Estimator // == tracker for the history kind
	estParams  estimate.Params
	plan       core.Plan
	iter       *schedule.Iterator
	iterBase   float64 // m.now at the last iterator rebuild
	lastReplan float64
	now        float64
	replans    int
	accessBase int // accesses restored from a snapshot at boot; live total adds acc.total()
	fetches    int // running total across all copies (incl. seeding)
	transfers  int

	notModified      int // conditional polls the upstream answered 304 (no body)
	refreshFailures  int
	skippedRefreshes int
	quarantineEvents int
	recoveries       int
	quarantined      int // elements currently quarantined; maintained at transitions

	// Explore/exploit state (zero-valued when ExploreFrac is 0):
	// uncertainty holds each element's estimator uncertainty as of the
	// last learn pass; exploreOnly marks elements funded only by the
	// explore slice, whose refreshes count as uncertainty probes.
	uncertainty   []float64
	exploreOnly   []bool
	exploreProbes int
	exploreBW     float64 // bandwidth the last plan's explore slice used

	// Crash-safe persistence (nil store disables it; see Config.Persist).
	store          persist.Storer
	lastSnapshot   float64 // period clock at the last snapshot attempt
	lastSnapshotAt float64 // period clock of the last durable snapshot; -1 none
	snapshots      int     // snapshots written this process
	persistErrors  int     // journal/snapshot write failures (state kept in memory)
	journalSkipped int     // appends withheld while persist-degraded
	replayed       int     // journal records replayed at boot
	recovered      bool    // some durable state survived into this process
	recoveryStatus string  // human-readable recovery outcome for /readyz
	ready          bool    // serves 200 on /readyz

	// Overload shedding and degraded-mode state (see degrade.go).
	// machine is mutated under m.mu; modeWord publishes its derived
	// mode for lock-free readers; limiter is pure-atomic; verified and
	// clockBits carry Float64bits of per-copy last-verified times and
	// the period clock so the degraded read path computes staleness
	// without locks.
	limiter     *resilience.Limiter
	machine     *resilience.Machine
	canceled    atomic.Uint64 // admitted reads whose client disconnected first
	modeWord    atomic.Uint32
	clockBits   atomic.Uint64
	verified    []atomic.Uint64
	journalWarn *obs.LogLimiter

	// Observability (see obs.go): nil metrics disable instrumentation;
	// log is never nil (a no-op logger stands in).
	metrics      *mirrorMetrics
	log          *slog.Logger
	lastPFUpdate float64 // period clock at the last PF gauge recompute
}

// New creates a mirror: it pulls the upstream catalog, seeds every
// local copy with an initial fetch, and computes the first plan under
// a uniform profile and the prior change rate. ctx bounds the seeding
// round-trips.
//
// With Config.Persist set, New first recovers: the snapshot restores
// the estimator histories, learned rates and profile, quarantine and
// breaker state, and the period clock; journal records written after
// that snapshot replay through the live commit path; and the schedule
// warm-starts from the restored frequency vector instead of a cold
// solve. Object bodies are never persisted — seeding re-fetches them —
// and the downtime gap is excluded from estimation (the boot fetch is
// not a poll: the mirror's clock did not run while it was down).
func New(ctx context.Context, cfg Config) (*Mirror, error) {
	if cfg.Upstream == nil {
		return nil, fmt.Errorf("httpmirror: Upstream is required")
	}
	cfg = cfg.withDefaults()
	if cfg.SnapshotEvery < 0 {
		return nil, fmt.Errorf("httpmirror: SnapshotEvery must be positive, got %v", cfg.SnapshotEvery)
	}
	if f := cfg.ExploreFrac; math.IsNaN(f) || f < 0 || f >= 0.9 {
		return nil, fmt.Errorf("httpmirror: ExploreFrac must be in [0, 0.9), got %v", f)
	}
	catalog, err := cfg.Upstream.Catalog(ctx)
	if err != nil {
		return nil, err
	}
	n := len(catalog)
	m := &Mirror{
		cfg:    cfg,
		elems:  make([]freshness.Element, n),
		copies: make([]copyState, n),
		health: make([]elemHealth, n),
		acc:    newAccessCounters(n),
		brk: breaker{
			threshold: cfg.Fault.BreakerThreshold,
			cooldown:  cfg.Fault.BreakerCooldown,
		},
		store:          cfg.Persist,
		lastSnapshotAt: -1,
		recoveryStatus: "disabled",
		log:            obs.Component(cfg.Logger, "mirror"),
		limiter:        resilience.NewLimiter(cfg.Overload),
		machine:        resilience.NewMachine(cfg.Degrade),
		verified:       make([]atomic.Uint64, n),
		journalWarn:    obs.NewLogLimiter(journalWarnInterval),
	}
	// Optional upstream capabilities, probed once: conditional fetches
	// collapse the HEAD-then-GET poll into one round trip, and a
	// hierarchy-aware upstream surfaces its own degradation for the
	// mode machine and the compounded staleness headers.
	m.condSrc, _ = cfg.Upstream.(ConditionalSource)
	m.upHealth, _ = cfg.Upstream.(UpstreamHealth)
	m.tracker, err = estimate.NewTracker(n)
	if err != nil {
		return nil, err
	}
	// withDefaults already resolved FloorLambda (0 → PriorLambda/10,
	// negative → disabled), so Params take it verbatim.
	m.estParams = estimate.Params{Prior: cfg.PriorLambda, Floor: cfg.FloorLambda}
	m.tracker.SetParams(m.estParams)
	if cfg.Estimator == estimate.KindHistory {
		m.est = m.tracker
	} else {
		m.est, err = estimate.New(cfg.Estimator, n, m.estParams)
		if err != nil {
			return nil, err
		}
	}
	if cfg.TruthLambda != nil && len(cfg.TruthLambda) != n {
		return nil, fmt.Errorf("httpmirror: TruthLambda has %d rates for %d elements", len(cfg.TruthLambda), n)
	}
	m.uncertainty = make([]float64, n)
	for i := range m.uncertainty {
		m.uncertainty[i] = 1
	}
	m.exploreOnly = make([]bool, n)
	if cfg.Metrics != nil {
		// Registered before recovery so replayed journal polls land in
		// the estimator counters like live ones.
		m.metrics = instrumentMirror(m, cfg.Metrics)
		m.tracker.Instrument(cfg.Metrics)
	}
	for i, entry := range catalog {
		if entry.ID != i {
			return nil, fmt.Errorf("httpmirror: catalog ids must be dense, got %d at position %d", entry.ID, i)
		}
		m.elems[i] = freshness.Element{
			ID:         entry.ID,
			Lambda:     cfg.PriorLambda,
			AccessProb: 1 / float64(n),
			Size:       entry.Size,
		}
	}
	// The serving pointer is never nil: readers that somehow race New
	// see an empty-bodied catalog, not a crash. The real snapshot is
	// published after seeding below.
	m.publishServingLocked()
	var restoredPlan *persist.PlanState
	if m.store != nil {
		restoredPlan = m.applyRecovery(m.store.Recovery())
		// The restored breaker and quarantine state feed the mode
		// machine so a mirror that died degraded wakes up degraded.
		m.machine.SetBreakerOpen(m.brk.state != BreakerClosed)
		m.machine.SetQuarantineFrac(float64(m.quarantined) / float64(n))
		// Boot-time disk probe: one bare fsync. If the state device is
		// already dead the mirror starts persist-degraded instead of
		// discovering it one timed-out append at a time — and "re-enter
		// full only after a successful fsync" holds from the first boot.
		if err := m.store.Sync(); err != nil {
			m.persistErrors++
			m.metrics.countPersistError()
			m.machine.ForcePersistDegraded(m.now)
			m.log.Warn("boot fsync probe failed; starting persist-degraded", "error", err)
		}
		m.publishModeLocked()
	}
	for i := range m.elems {
		body, ver, err := cfg.Upstream.Fetch(ctx, i)
		if err != nil {
			return nil, fmt.Errorf("httpmirror: seeding copy %d: %w", i, err)
		}
		c := &m.copies[i]
		c.body = body
		c.version = ver
		c.fetches++
		m.fetches++
		m.verified[i].Store(math.Float64bits(m.now))
		if m.recovered {
			// The next poll's elapsed time starts at the restored
			// clock: the downtime gap never reaches the estimator.
			c.lastPoll = m.now
		}
	}
	m.clockBits.Store(math.Float64bits(m.now))
	// Every body and version is now in place: publish the snapshot the
	// first real reader will serve from.
	m.publishServingLocked()
	if m.recovered {
		// Fold the replayed observations into the element knowledge so
		// the first cadence replan starts from everything on disk.
		m.learnLocked()
	}
	if restoredPlan == nil || m.restorePlanLocked(*restoredPlan) != nil {
		if err := m.replanLocked(); err != nil {
			return nil, err
		}
	}
	m.lastSnapshot = m.now
	// Readiness: immediately without persistence or after a recovery;
	// a cold persistent mirror answers 503 until its first snapshot.
	m.ready = m.store == nil || m.recovered
	// No concurrency yet, so the Locked gauge helpers run bare; this
	// also covers the warm-start path, which bypasses replanLocked.
	m.updatePlanGaugesLocked()
	m.updatePFGaugesLocked()
	m.log.Info("mirror up",
		"objects", n,
		"strategy", m.plan.Strategy.String(),
		"planned_pf", m.plan.Perceived,
		"recovery", m.recoveryStatus,
		"journal_replayed", m.replayed,
		"ready", m.ready)
	return m, nil
}

// replanLocked recomputes the plan from the current element knowledge
// and rebuilds the refresh iterator. Quarantined elements are excluded
// from the optimization — their budget share water-fills back across
// the healthy elements — and re-enter on the replan after recovery.
// With ExploreFrac > 0 the budget splits: f·ū·B is water-filled on
// estimator uncertainty (explore, see schedule.AllocateExplore), where
// ū is the catalog's mean uncertainty, and the rest is water-filled on
// the learned rates as usual (exploit); both frequency vectors merge
// into one iterator. Callers hold m.mu (or are New).
func (m *Mirror) replanLocked() error {
	active := make([]freshness.Element, 0, len(m.elems))
	for i := range m.elems {
		if !m.health[i].quarantined {
			active = append(active, m.elems[i])
		}
	}
	// The explore slice anneals with mean uncertainty: a cold mirror
	// (all uncertainty 1) spends the full configured fraction probing;
	// as the estimator converges the slice shrinks and its bandwidth
	// flows back to exploitation, so a warm mirror pays almost no
	// probe tax.
	var meanU float64
	for _, u := range m.uncertainty {
		meanU += u
	}
	meanU /= float64(len(m.uncertainty))
	exploreBudget := m.cfg.Plan.Bandwidth * m.cfg.ExploreFrac * meanU
	full := make([]float64, len(m.elems))
	for i := range m.exploreOnly {
		m.exploreOnly[i] = false
	}
	m.exploreBW = 0
	var plan core.Plan
	if len(active) == 0 {
		// Everything is quarantined: an empty plan; the mirror keeps
		// serving stale copies and probing for recovery.
		plan = core.Plan{Freqs: full, Strategy: m.cfg.Plan.Strategy}
	} else {
		cfg := m.cfg.Plan
		cfg.Bandwidth -= exploreBudget
		if cfg.NumPartitions > len(active) {
			cfg.NumPartitions = len(active)
		}
		p, err := core.MakePlan(active, cfg)
		if err != nil {
			return err
		}
		// Expand the active-subset frequencies back over the full
		// index space (zero for quarantined elements).
		j := 0
		for i := range m.elems {
			if !m.health[i].quarantined {
				full[i] = p.Freqs[j]
				j++
			}
		}
		p.Freqs = full
		plan = p
		if exploreBudget > 0 {
			if err := m.mergeExploreLocked(&plan, active, exploreBudget); err != nil {
				return err
			}
		}
	}
	iter, err := schedule.NewIterator(plan.Freqs, true, m.cfg.Seed+int64(m.replans))
	if err != nil {
		return err
	}
	m.plan = plan
	m.iter = iter
	m.iterBase = m.now
	m.lastReplan = m.now
	m.replans++
	m.metrics.countReplan()
	m.metrics.setExploreBandwidth(m.exploreBW)
	m.updatePlanGaugesLocked()
	m.updatePFGaugesLocked()
	m.log.Debug("replanned",
		"planned_pf", plan.Perceived,
		"bandwidth_used", plan.BandwidthUsed,
		"active", len(active),
		"now", m.now)
	return nil
}

// mergeExploreLocked water-fills the explore slice over the active
// elements' uncertainty and folds the probe frequencies into the
// plan: frequencies add, bandwidth adds, and the plan's quality
// metrics are recomputed at the combined allocation over the full
// catalog. Elements funded only by the explore slice are marked so
// their refreshes count as uncertainty probes. Callers hold m.mu.
func (m *Mirror) mergeExploreLocked(plan *core.Plan, active []freshness.Element, budget float64) error {
	activeU := make([]float64, 0, len(active))
	for i := range m.elems {
		if !m.health[i].quarantined {
			activeU = append(activeU, m.uncertainty[i])
		}
	}
	exFreqs, exUsed, err := schedule.AllocateExplore(active, activeU, m.cfg.PriorLambda, budget)
	if err != nil {
		return err
	}
	j := 0
	for i := range m.elems {
		if m.health[i].quarantined {
			continue
		}
		if exFreqs[j] > 0 && plan.Freqs[i] == 0 {
			m.exploreOnly[i] = true
		}
		plan.Freqs[i] += exFreqs[j]
		j++
	}
	plan.BandwidthUsed += exUsed
	m.exploreBW = exUsed
	pol := m.cfg.Plan.Policy
	if pol == nil {
		pol = freshness.FixedOrder{}
	}
	// Quality metrics at the combined allocation; failures here would
	// mean invalid frequencies, which the allocators never produce.
	if pf, err := freshness.Perceived(pol, m.elems, plan.Freqs); err == nil {
		plan.Perceived = pf
	}
	if af, err := freshness.Average(pol, m.elems, plan.Freqs); err == nil {
		plan.AvgFreshness = af
	}
	return nil
}

// Step advances the mirror clock to now (in periods), performing every
// refresh that came due, probing quarantined elements, and re-planning
// on cadence. It returns the number of refreshes performed.
//
// Step aggregates per-element outcomes: a failing refresh feeds the
// breaker and the element's quarantine counter but never aborts the
// batch. The only errors Step returns are a clock moving backwards and
// internal planning failures.
func (m *Mirror) Step(now float64) (int, error) {
	m.stepMu.Lock()
	defer m.stepMu.Unlock()

	m.mu.Lock()
	if now < m.now {
		m.mu.Unlock()
		return 0, fmt.Errorf("httpmirror: clock moved backwards (%v < %v)", now, m.now)
	}
	// Drain every due event up front; network I/O happens unlocked.
	type dueEvent struct {
		element int
		at      float64
	}
	var due []dueEvent
	for {
		ev, ok := m.iter.Peek()
		if !ok || m.iterBase+ev.Time > now {
			break
		}
		m.iter.Next()
		due = append(due, dueEvent{element: ev.Element, at: m.iterBase + ev.Time})
	}
	m.mu.Unlock()

	refreshes := 0
	healthChanged := false
	for _, ev := range due {
		m.mu.Lock()
		if m.health[ev.element].quarantined {
			// Replanning already zeroed its frequency; a leftover
			// event from the pre-quarantine iterator is dropped.
			m.mu.Unlock()
			continue
		}
		if !m.brk.allow(ev.at) {
			// Breaker open: skip the refresh, keep serving the stale
			// copy. The skip is recorded — not fed to the estimator —
			// so an outage is never mistaken for "no change observed".
			m.skippedRefreshes++
			m.metrics.countSkipped()
			m.mu.Unlock()
			continue
		}
		m.mu.Unlock()

		err := m.timedRefresh(ev.element, ev.at)
		if m.noteOutcome(ev.element, ev.at, err) {
			healthChanged = true
		}
		if err == nil {
			refreshes++
			m.mu.Lock()
			if m.exploreOnly[ev.element] {
				// This element is funded only by the explore slice: the
				// refresh is an uncertainty probe, not an exploit poll.
				m.exploreProbes++
				m.metrics.countExploreProbe()
			}
			m.mu.Unlock()
		} else {
			m.journalFailure(ev.element, ev.at)
		}
	}

	if m.probeQuarantined(now) {
		healthChanged = true
	}

	m.mu.Lock()
	if now > m.now {
		m.now = now
		// Publish the clock for the lock-free staleness computation in
		// the degraded read path.
		m.clockBits.Store(math.Float64bits(m.now))
	}
	if m.metrics != nil && m.now-m.lastPFUpdate >= 1 {
		// The live PF gauges cost one exp per element, so they follow
		// the period clock, not the tick or scrape rate.
		m.updatePFGaugesLocked()
	}
	if healthChanged {
		if err := m.replanLocked(); err != nil {
			m.mu.Unlock()
			return refreshes, err
		}
	}
	if now-m.lastReplan >= m.cfg.ReplanEvery {
		m.learnLocked()
		if err := m.replanLocked(); err != nil {
			m.mu.Unlock()
			return refreshes, err
		}
	}
	// Snapshot on the period clock. The state is captured under the
	// lock but committed outside it: the fsyncs must not block Access.
	// While persist-degraded the machine's exponential backoff gates
	// attempts — each one is the fsync probe that would clear the mode,
	// but a dead disk must not eat a timeout every cadence tick.
	var snap *persist.Snapshot
	if m.store != nil && now-m.lastSnapshot >= m.cfg.SnapshotEvery && m.machine.SnapshotDue(now) {
		snap = m.exportStateLocked()
		m.lastSnapshot = now
	}
	m.mu.Unlock()
	if snap != nil {
		// A failing state disk is counted (surfaced via /readyz), not
		// allowed to stop the refresh pipeline.
		m.commitSnapshot(snap)
	}
	return refreshes, nil
}

// timedRefresh runs refresh under the duration histogram: every
// attempt lands in freshen_refresh_duration_seconds{outcome} and
// freshen_refreshes_total{outcome}.
func (m *Mirror) timedRefresh(id int, at float64) error {
	start := time.Now()
	err := m.refresh(id, at)
	m.metrics.observeRefresh(time.Since(start), err)
	return err
}

// refresh refreshes one object conditionally. Against a plain source,
// a HEAD reveals the upstream version and the body is transferred only
// when it differs from the stored copy. Against a ConditionalSource
// the two calls collapse into one version-conditional GET: an
// unchanged object answers 304 with no body, a changed one arrives as
// a full 200 with the body already in hand. Either way the refresh
// always counts as a change poll, and an unchanged object costs no
// body transfer. An origin that advertises the interface but answers a
// conditional request with a 200 carrying the version we already hold
// is ignoring the condition; that discovery permanently reverts the
// mirror to the HEAD-then-GET protocol (paying per-poll transfers
// against such an origin would silently double bandwidth). The network
// calls run without holding m.mu; the outcome is committed under it. A
// failed refresh commits nothing: the estimator only ever sees
// successful polls, with elapsed measured from the last successful
// one.
func (m *Mirror) refresh(id int, at float64) error {
	m.mu.Lock()
	stored := m.copies[id].version
	conditional := m.condSrc != nil && !m.condOff
	m.mu.Unlock()

	ctx := context.Background()
	var (
		changed     bool
		notModified bool
		condBroken  bool
		body        []byte
		ver         int
		err         error
	)
	if conditional {
		body, ver, notModified, err = m.condSrc.FetchIfNewer(ctx, id, stored)
		if err != nil {
			return fmt.Errorf("httpmirror: polling %d: %w", id, err)
		}
		changed = !notModified && ver != stored
		condBroken = !notModified && ver == stored
	} else {
		ver, err = m.cfg.Upstream.Version(ctx, id)
		if err != nil {
			return fmt.Errorf("httpmirror: polling %d: %w", id, err)
		}
		changed = ver != stored
		if changed {
			body, ver, err = m.cfg.Upstream.Fetch(ctx, id)
			if err != nil {
				return fmt.Errorf("httpmirror: refreshing %d: %w", id, err)
			}
		}
	}

	m.mu.Lock()
	if notModified {
		m.notModified++
		m.metrics.countNotModified()
	}
	if condBroken && !m.condOff {
		m.condOff = true
		m.log.Warn("upstream ignores conditional fetches; reverting to HEAD-then-GET",
			"element", id, "version", ver)
	}
	c := &m.copies[id]
	elapsed := at - c.lastPoll
	if elapsed > 0 {
		if err := m.recordPollLocked(id, elapsed, changed); err != nil {
			m.mu.Unlock()
			return err
		}
	} else {
		elapsed = 0 // no observation: first poll of this copy
	}
	c.lastPoll = at
	m.verified[id].Store(math.Float64bits(at))
	c.fetches++
	m.fetches++
	if changed {
		c.body = body
		c.version = ver
		c.fetchedAt = at
		m.transfers++
		m.metrics.countTransfer()
		// Commit the new body/version pair to readers: one snapshot
		// swap per transferring refresh. Readers holding the previous
		// snapshot finish on the old (internally consistent) view.
		m.publishServingLocked()
	}
	journaled := m.store != nil
	m.mu.Unlock()
	if journaled {
		m.appendJournal(persist.Record{
			Kind:    persist.KindRefresh,
			Element: id,
			At:      at,
			Elapsed: elapsed,
			Changed: changed,
			Version: ver,
		})
	}
	return nil
}

// noteOutcome feeds one refresh outcome into the breaker and the
// element's quarantine counter. It reports whether the quarantine set
// changed (the caller then replans so the freed budget water-fills
// across the healthy elements).
func (m *Mirror) noteOutcome(id int, at float64, err error) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.noteOutcomeLocked(id, at, err)
}

// noteOutcomeLocked is noteOutcome under an already-held m.mu; journal
// replay uses it directly so recovery reproduces the live transitions.
// Every outcome also re-derives the degradation mode: the breaker and
// quarantine signals the mode machine consumes only ever move here.
func (m *Mirror) noteOutcomeLocked(id int, at float64, err error) bool {
	changed := m.recordOutcomeLocked(id, at, err)
	m.machine.SetBreakerOpen(m.brk.state != BreakerClosed)
	m.machine.SetQuarantineFrac(float64(m.quarantined) / float64(len(m.elems)))
	if m.upHealth != nil {
		// In a hierarchical chain the upstream tier's own degradation
		// compounds into ours: serving from a source-degraded regional
		// mirror means serving stale, breaker state notwithstanding.
		m.machine.SetUpstreamDegraded(m.upHealth.UpstreamDegraded())
	}
	m.publishModeLocked()
	return changed
}

func (m *Mirror) recordOutcomeLocked(id int, at float64, err error) bool {
	tripsBefore := m.brk.trips
	m.brk.record(err == nil, at)
	if m.brk.trips > tripsBefore {
		m.metrics.countBreakerTrip()
		m.log.Warn("breaker opened", "at", at, "trips", m.brk.trips)
	}
	h := &m.health[id]
	if err == nil {
		h.consecFails = 0
		if h.quarantined {
			h.quarantined = false
			m.quarantined--
			m.recoveries++
			m.metrics.countRecovery()
			m.log.Info("element recovered", "element", id, "at", at,
				"quarantined_for", at-h.quarantinedAt)
			return true
		}
		return false
	}
	m.refreshFailures++
	h.consecFails++
	if q := m.cfg.Fault.QuarantineAfter; q > 0 && !h.quarantined && h.consecFails >= q {
		h.quarantined = true
		h.quarantinedAt = at
		h.lastProbe = at
		m.quarantined++
		m.quarantineEvents++
		m.metrics.countQuarantine()
		m.log.Info("element quarantined", "element", id, "at", at,
			"consecutive_failures", h.consecFails, "error", err)
		return true
	}
	return false
}

// probeQuarantined attempts a recovery refresh for each quarantined
// element whose probe cadence has elapsed (and only while the breaker
// admits traffic). It reports whether any element recovered.
func (m *Mirror) probeQuarantined(now float64) bool {
	m.mu.Lock()
	var probe []int
	for i := range m.health {
		h := &m.health[i]
		if h.quarantined && now-h.lastProbe >= m.cfg.Fault.ProbeEvery {
			probe = append(probe, i)
		}
	}
	m.mu.Unlock()

	changed := false
	for _, id := range probe {
		m.mu.Lock()
		allowed := m.brk.allow(now)
		if allowed {
			m.health[id].lastProbe = now
		}
		m.mu.Unlock()
		if !allowed {
			break
		}
		err := m.timedRefresh(id, now)
		if m.noteOutcome(id, now, err) {
			changed = true
		}
		if err != nil {
			m.journalFailure(id, now)
		}
	}
	return changed
}

// recordPollLocked feeds one censored observation to the history
// tracker (always: it owns the persisted histories and the poll
// counters) and to the online estimator when a distinct one is
// configured. Callers hold m.mu.
func (m *Mirror) recordPollLocked(id int, elapsed float64, changed bool) error {
	if err := m.tracker.Record(id, elapsed, changed); err != nil {
		return err
	}
	if m.est != estimate.Estimator(m.tracker) {
		// The tracker already validated the observation, so the online
		// update cannot fail.
		if err := m.est.Observe(id, elapsed, changed); err != nil {
			return err
		}
	}
	return nil
}

// learnLocked folds the access log and poll history into the element
// knowledge the next plan uses.
func (m *Mirror) learnLocked() {
	// Drain the striped per-object access counters into the copies at
	// this period boundary; the learner then sees exactly the counts
	// the read path recorded since the last drain.
	m.acc.drainInto(m.copies)
	// Profile: Laplace-smoothed access counts.
	total := m.cfg.ProfileSmoothing * float64(len(m.elems))
	for i := range m.copies {
		total += float64(m.copies[i].accesses)
	}
	for i := range m.elems {
		m.elems[i].AccessProb = (float64(m.copies[i].accesses) + m.cfg.ProfileSmoothing) / total
	}
	// Change rates from the configured estimator: prior where unpolled,
	// floored so no element is starved (see Config.FloorLambda).
	// Skipped and failed polls never reached the estimator, so an
	// outage leaves the estimates untouched instead of dragging them
	// toward zero.
	if ests, err := m.est.Estimates(m.cfg.PriorLambda); err == nil {
		for i, l := range ests {
			m.elems[i].Lambda = l
		}
	}
	// Uncertainty drives the explore slice; computing it costs one
	// Estimate per element (a full MLE re-solve for the history kind),
	// so it runs only when a probe budget actually consumes it. The
	// score is floored at the planning-relevant rate scale so elements
	// confidently known to be near-static release their probe share
	// (see estimate.Estimate.UncertaintyAt).
	if m.cfg.ExploreFrac > 0 {
		for i := range m.uncertainty {
			m.uncertainty[i] = m.est.Estimate(i).UncertaintyAt(m.cfg.PriorLambda / 10)
		}
		m.metrics.observeConfidence(m.uncertainty)
	}
	m.metrics.setLambdaError(m.lambdaErrorLocked())
}

// lambdaErrorLocked is the mean relative error of the learned rates
// against the configured ground truth, or -1 when no truth is known
// (production: the gauge stays at its sentinel).
func (m *Mirror) lambdaErrorLocked() float64 {
	truth := m.cfg.TruthLambda
	if truth == nil {
		return -1
	}
	sum, count := 0.0, 0
	for i, want := range truth {
		if want <= 0 {
			continue
		}
		sum += math.Abs(m.elems[i].Lambda-want) / want
		count++
	}
	if count == 0 {
		return -1
	}
	return sum / float64(count)
}

// Run drives the refresh loop against the wall clock, mapping one
// scheduling period to periodLength, until ctx is cancelled (which is
// a normal shutdown, reported as nil). Upstream failures never
// terminate the loop — retries, the circuit breaker, and quarantine
// absorb them; only internal errors (a clock inversion, a planner
// failure) are returned.
func (m *Mirror) Run(ctx context.Context, periodLength time.Duration) error {
	if periodLength <= 0 {
		return fmt.Errorf("httpmirror: period length must be positive, got %v", periodLength)
	}
	tick := periodLength / 100
	if tick <= 0 {
		tick = time.Millisecond
	}
	// Resume from the mirror's current clock so a restarted Run never
	// drives time backwards.
	base := m.Status().Now
	start := time.Now()
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C:
			now := base + time.Since(start).Seconds()/periodLength.Seconds()
			if _, err := m.Step(now); err != nil {
				return err
			}
		}
	}
}

// Access serves one local copy, recording the access for profile
// learning. It returns the stored body and version. Unknown ids fail
// with ErrNotFound.
//
// This is the hot path: one atomic snapshot load, a bounds check, and
// two atomic counter increments — no locks, no allocations. It serves
// concurrently with refresh commits, replans, and snapshot fsyncs;
// the body/version pair always comes from one published snapshot, so
// it is never torn.
func (m *Mirror) Access(id int) (body []byte, version int, err error) {
	snap := m.serve.Load()
	if id < 0 || id >= len(snap.views) {
		return nil, 0, errAccessOutOfRange
	}
	m.acc.record(id)
	v := &snap.views[id]
	return v.body, v.version, nil
}

// totalAccessesLocked is the lifetime access count: whatever a
// restored snapshot carried in plus everything this process recorded.
// Callers hold m.mu (the base is mutated only at boot, but callers
// are already serializing status/export reads).
func (m *Mirror) totalAccessesLocked() int {
	return m.accessBase + int(m.acc.total())
}

// Status is the mirror's observable state.
type Status struct {
	Objects       int     `json:"objects"`
	Now           float64 `json:"now_periods"`
	Accesses      int     `json:"accesses"`
	Fetches       int     `json:"fetches"`
	Transfers     int     `json:"transfers"`
	Replans       int     `json:"replans"`
	PlannedPF     float64 `json:"planned_perceived_freshness"`
	PlannedAvg    float64 `json:"planned_average_freshness"`
	BandwidthUsed float64 `json:"bandwidth_used"`
	Strategy      string  `json:"strategy"`

	// Change-rate estimation and explore/exploit state.
	Estimator        string  `json:"estimator"`
	ExploreFrac      float64 `json:"explore_frac"`
	ExploreProbes    int     `json:"explore_probes"`
	ExploreBandwidth float64 `json:"explore_bandwidth"`

	// Hierarchical topology state (zero/empty outside a chain).
	NotModified      int    `json:"source_not_modified"`
	UpstreamURL      string `json:"upstream_url,omitempty"`
	UpstreamDegraded bool   `json:"upstream_degraded,omitempty"`

	// Fault-tolerance counters.
	Retries          int64  `json:"retries"`
	RefreshFailures  int    `json:"refresh_failures"`
	SkippedRefreshes int    `json:"skipped_refreshes"`
	BreakerState     string `json:"breaker_state"`
	BreakerTrips     int    `json:"breaker_trips"`
	Quarantined      int    `json:"quarantined"`
	QuarantineEvents int    `json:"quarantine_events"`
	Recoveries       int    `json:"recoveries"`

	// Overload and degradation state (see DESIGN.md §12).
	Mode            string `json:"mode"`
	ModeTransitions int    `json:"mode_transitions"`
	Inflight        int64  `json:"inflight"`
	InflightLimit   int64  `json:"inflight_limit"`
	Admitted        uint64 `json:"admitted_requests"`
	Shed            uint64 `json:"shed_requests"`
	Canceled        uint64 `json:"canceled_requests"`

	// Persistence counters (zero when persistence is disabled).
	Snapshots                  int `json:"snapshots"`
	PersistErrors              int `json:"persist_errors"`
	ConsecutivePersistFailures int `json:"consecutive_persist_failures"`
	JournalSkipped             int `json:"journal_records_skipped"`
}

// Status reports the mirror's current state. The quarantined count is
// a field maintained at quarantine/recovery transitions, not an O(n)
// scan — /healthz, /readyz, and status scrapes stay O(1) in the
// catalog size.
func (m *Mirror) Status() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Status{
		Objects:          len(m.copies),
		Now:              m.now,
		Accesses:         m.totalAccessesLocked(),
		Fetches:          m.fetches,
		Transfers:        m.transfers,
		Replans:          m.replans,
		PlannedPF:        m.plan.Perceived,
		PlannedAvg:       m.plan.AvgFreshness,
		BandwidthUsed:    m.plan.BandwidthUsed,
		Strategy:         m.plan.Strategy.String(),
		Estimator:        m.est.Kind(),
		ExploreFrac:      m.cfg.ExploreFrac,
		ExploreProbes:    m.exploreProbes,
		ExploreBandwidth: m.exploreBW,
		NotModified:      m.notModified,
		Retries:          m.cfg.Upstream.Retries(),
		RefreshFailures:  m.refreshFailures,
		SkippedRefreshes: m.skippedRefreshes,
		BreakerState:     m.brk.state.String(),
		BreakerTrips:     m.brk.trips,
		Quarantined:      m.quarantined,
		QuarantineEvents: m.quarantineEvents,
		Recoveries:       m.recoveries,

		Mode:            m.machine.Mode().String(),
		ModeTransitions: m.machine.Transitions(),
		Inflight:        m.limiter.Inflight(),
		InflightLimit:   m.limiter.Limit(),
		Admitted:        m.limiter.Admitted(),
		Shed:            m.limiter.Shed(),
		Canceled:        m.canceled.Load(),

		Snapshots:                  m.snapshots,
		PersistErrors:              m.persistErrors,
		ConsecutivePersistFailures: m.machine.ConsecutivePersistFailures(),
		JournalSkipped:             m.journalSkipped,
	}
	if m.upHealth != nil {
		s.UpstreamURL = m.upHealth.UpstreamURL()
		s.UpstreamDegraded = m.upHealth.UpstreamDegraded()
	}
	return s
}

// Health is the mirror's liveness report, served by /healthz. It is
// deliberately always an HTTP 200 while the process lives — the mirror
// serves stale copies through any upstream trouble — so orchestrators
// never restart a mirror for an origin outage. Traffic-gating belongs
// to /readyz (see Readiness).
type Health struct {
	// Serving is always true while the process lives: the mirror
	// serves its local copies even through a full upstream outage.
	Serving          bool   `json:"serving"`
	BreakerState     string `json:"breaker_state"`
	BreakerTrips     int    `json:"breaker_trips"`
	Quarantined      []int  `json:"quarantined_objects"`
	SkippedRefreshes int    `json:"skipped_refreshes"`
	RefreshFailures  int    `json:"refresh_failures"`
	Retries          int64  `json:"retries"`
}

// Health reports the fault-tolerance state.
func (m *Mirror) Health() Health {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := Health{
		Serving:          true,
		BreakerState:     m.brk.state.String(),
		BreakerTrips:     m.brk.trips,
		Quarantined:      []int{},
		SkippedRefreshes: m.skippedRefreshes,
		RefreshFailures:  m.refreshFailures,
		Retries:          m.cfg.Upstream.Retries(),
	}
	// Only the id list costs a scan, and only while something is
	// actually quarantined — the healthy steady state stays O(1).
	if m.quarantined > 0 {
		h.Quarantined = make([]int, 0, m.quarantined)
		for i := range m.health {
			if m.health[i].quarantined {
				h.Quarantined = append(h.Quarantined, i)
			}
		}
	}
	return h
}

// Plan returns the current plan.
func (m *Mirror) Plan() core.Plan {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.plan
}

// ForceReplan learns from the current logs and re-plans immediately.
func (m *Mirror) ForceReplan() error {
	m.stepMu.Lock()
	defer m.stepMu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.learnLocked()
	return m.replanLocked()
}

// Catalog lists the mirror's objects in source-protocol form. Serving
// it (GET /catalog) is what lets a mirror stand upstream of another
// mirror: a downstream SourceClient bootstraps against this tier
// exactly as it would against an origin.
func (m *Mirror) Catalog() []CatalogEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]CatalogEntry, len(m.elems))
	for i := range m.elems {
		out[i] = CatalogEntry{ID: m.elems[i].ID, Size: m.elems[i].Size}
	}
	return out
}

// Elements returns a copy of the mirror's current element knowledge:
// the learned change rates, the learned access profile, and the
// catalog sizes. A fleet-level allocator pools these across shards to
// water-fill the global budget.
func (m *Mirror) Elements() []freshness.Element {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]freshness.Element(nil), m.elems...)
}

// Budget is the refresh budget per period the planner currently runs
// under.
func (m *Mirror) Budget() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cfg.Plan.Bandwidth
}

// SetBudget replaces the mirror's refresh budget and replans
// immediately, so a fleet allocator's decision takes effect within the
// current period rather than at the next cadence replan. The explore
// slice is funded from the new budget (it scales with it), so a cut
// shrinks exploration too; the exploit plan gets the rest. A no-op
// when the budget is unchanged.
func (m *Mirror) SetBudget(b float64) error {
	if math.IsNaN(b) || math.IsInf(b, 0) || b < 0 {
		return fmt.Errorf("httpmirror: budget must be finite and non-negative, got %v", b)
	}
	m.stepMu.Lock()
	defer m.stepMu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	if b == m.cfg.Plan.Bandwidth {
		return nil
	}
	old := m.cfg.Plan.Bandwidth
	m.cfg.Plan.Bandwidth = b
	m.learnLocked()
	if err := m.replanLocked(); err != nil {
		m.cfg.Plan.Bandwidth = old
		return err
	}
	m.log.Info("budget updated", "from", old, "to", b, "now", m.now)
	return nil
}

// serveObject is the admitted object read: resolve the id, serve the
// body and version from the lock-free snapshot, and — only when the
// mirror is degraded — attach the mode and staleness headers. A HEAD
// answers headers only (the downstream change poll), and a GET whose
// X-If-Version matches the served version answers 304 with no body
// (the downstream conditional fetch) — both still carry the mode and
// staleness headers so a chained mirror sees its upstream's health on
// every poll. The full path, 304s and HEADs included, stays
// allocation-free (see TestObjectHandlerAllocs).
func (m *Mirror) serveObject(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(strings.TrimPrefix(r.URL.Path, "/object/"))
	if err != nil {
		http.Error(w, "bad object id", http.StatusBadRequest)
		return
	}
	body, ver, err := m.Access(id)
	switch {
	case errors.Is(err, ErrNotFound):
		http.Error(w, "no such object", http.StatusNotFound)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if mode := resilience.Mode(m.modeWord.Load()); mode != resilience.ModeFull {
		m.degradedHeaders(w.Header(), mode, id)
	}
	// Small versions reuse a pre-built header slice; "X-Version" is
	// already in canonical MIME form, so direct map assignment
	// matches what Header().Set would store.
	if ver >= 0 && ver < len(versionHeaders) {
		w.Header()["X-Version"] = versionHeaders[ver]
	} else {
		w.Header().Set("X-Version", strconv.Itoa(ver))
	}
	if r.Method == http.MethodHead {
		return
	}
	if ifv := r.Header.Get("X-If-Version"); ifv != "" {
		if have, err := strconv.Atoi(ifv); err == nil && have == ver {
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	w.Write(body)
}

// wantsPlainText reports whether a probe asked for the plain-text
// form of a health endpoint: kubelet-style probes send
// "Accept: text/plain" and want a bare ok/unavailable body, while
// monitoring clients (no Accept, or anything else) get JSON.
func wantsPlainText(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "text/plain")
}

// Handler serves the mirror API: GET/HEAD /object/{id} (conditional
// via X-If-Version), GET /catalog (the source protocol — what lets a
// mirror stand upstream of another mirror), GET /status, GET /healthz
// (liveness), GET /readyz (readiness; 503 until the first recovery or
// snapshot completes), POST /replan, and — when the mirror was built
// with a metrics registry — GET /metrics.
//
// /healthz and /readyz answer JSON by default and plain text ("ok" /
// "unavailable") when the request's Accept header asks for text/plain.
// Every route lands in freshen_serve_requests_total{route,code}.
func (m *Mirror) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(route string, h http.HandlerFunc) {
		mux.Handle(route, m.metrics.countRequests(strings.TrimSuffix(route, "/"), h))
	}
	object := m.metrics.countRequests("/object", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		// Admission control: past the adaptive limit the request is
		// shed immediately — a 503 with a jittered Retry-After —
		// instead of queueing into latency collapse. Only object reads
		// shed; health, readiness, status, and metrics stay un-gated.
		if !m.limiter.Acquire() {
			w.Header()["Retry-After"] = resilience.RetryAfterHeader()
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		start := time.Now()
		if d := m.cfg.ServeFaultLatency; d > 0 {
			// The chaos latency window honors client cancellation: a
			// caller that disconnects mid-wait releases its limiter
			// slot now, not after the full artificial stall — holding
			// slots for the dead would starve live clients exactly when
			// the server is slow.
			t := time.NewTimer(d)
			select {
			case <-r.Context().Done():
				t.Stop()
				m.limiter.Release(time.Since(start))
				m.metrics.countCanceled()
				m.canceled.Add(1)
				return
			case <-t.C:
			}
		}
		if r.Context().Err() != nil {
			// The client is gone: the slot goes back immediately and
			// nothing is written (the connection is already dead).
			m.limiter.Release(time.Since(start))
			m.metrics.countCanceled()
			m.canceled.Add(1)
			return
		}
		m.serveObject(w, r)
		m.limiter.Release(time.Since(start))
	}))
	mux.Handle("/object/", object)
	handle("/catalog", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(m.Catalog()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	handle("/status", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(m.Status()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	handle("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if wantsPlainText(r) {
			// Liveness is unconditionally ok while the process serves.
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, "ok")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(m.Health()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	handle("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		rd := m.Readiness()
		if wantsPlainText(r) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if !rd.Ready {
				// Retry-After tells rolling-deploy gates when to probe
				// again; readiness usually flips within one snapshot
				// cadence, so the shed hint is honest here too.
				w.Header()["Retry-After"] = resilience.RetryAfterHeader()
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintln(w, "unavailable")
				return
			}
			fmt.Fprintln(w, "ok")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if !rd.Ready {
			w.Header()["Retry-After"] = resilience.RetryAfterHeader()
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		if err := json.NewEncoder(w).Encode(rd); err != nil && rd.Ready {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	handle("/replan", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if err := m.ForceReplan(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	if reg := m.cfg.Metrics; reg != nil {
		// The registry's handler already enforces GET-or-405.
		mux.Handle("/metrics", m.metrics.countRequests("/metrics", reg.Handler()))
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Hot-path dispatch: a GET or HEAD of a well-formed
		// /object/{id} goes straight to the object handler, skipping
		// the mux's path-cleaning machinery (≈3 allocs per request).
		// Anything else — other routes, other methods, ids that need
		// cleaning or rejecting — takes the mux and behaves exactly as
		// before. HEAD rides the fast path too: it is the downstream
		// mirror's change poll, as hot as the reads.
		if r.Method == http.MethodGet || r.Method == http.MethodHead {
			if rest, ok := strings.CutPrefix(r.URL.Path, "/object/"); ok {
				if _, err := strconv.Atoi(rest); err == nil {
					object.ServeHTTP(w, r)
					return
				}
			}
		}
		mux.ServeHTTP(w, r)
	})
}
