package httpmirror

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"freshen/internal/core"
	"freshen/internal/obs"
	"freshen/internal/persist"
)

// newInstrumentedMirror builds a mirror wired to a fresh registry and
// a test logger, backed by a simulated origin.
func newInstrumentedMirror(t *testing.T, lambdas []float64, bandwidth float64) (*SimulatedSource, *Mirror, *obs.Registry) {
	t.Helper()
	src, err := NewSimulatedSource(lambdas, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(src.Handler())
	t.Cleanup(srv.Close)
	reg := obs.NewRegistry()
	m, err := New(context.Background(), Config{
		Upstream:    NewSourceClient(srv.URL, srv.Client()),
		Plan:        core.Config{Bandwidth: bandwidth},
		ReplanEvery: 10,
		Metrics:     reg,
		Logger:      obs.NewTestLogger(io.Discard, -8),
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return src, m, reg
}

func scrape(t *testing.T, url string) *obs.Exposition {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics Content-Type = %q", ct)
	}
	e, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestMirrorMetricsEndToEnd drives a live mirror and scrapes its own
// /metrics route: the core series (PF, refresh outcomes and latency,
// serve-path counters, state gauges) must all be present with sane
// values.
func TestMirrorMetricsEndToEnd(t *testing.T) {
	src, m, _ := newInstrumentedMirror(t, []float64{4, 2, 1, 0.5}, 4)
	api := httptest.NewServer(m.Handler())
	defer api.Close()

	for step := 1; step <= 6; step++ {
		src.Advance(float64(step))
		if _, err := m.Step(float64(step)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/object/%d", api.URL, i%4))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	// One miss for the 404 serve-path label.
	if resp, err := http.Get(api.URL + "/object/99"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	e := scrape(t, api.URL+"/metrics")

	if v, ok := e.Value("freshen_pf"); !ok || v <= 0 || v > 1 {
		t.Errorf("freshen_pf = %v, %v; want in (0, 1]", v, ok)
	}
	if v, ok := e.Value("freshen_avg_freshness"); !ok || v <= 0 || v > 1 {
		t.Errorf("freshen_avg_freshness = %v, %v", v, ok)
	}
	if v, ok := e.Value("freshen_objects"); !ok || v != 4 {
		t.Errorf("freshen_objects = %v, %v; want 4", v, ok)
	}
	if v, ok := e.Value("freshen_clock_periods"); !ok || v != 6 {
		t.Errorf("freshen_clock_periods = %v, %v; want 6", v, ok)
	}
	if v, ok := e.Value("freshen_refreshes_total", "outcome", "success"); !ok || v < 1 {
		t.Errorf("freshen_refreshes_total{success} = %v, %v; want >= 1", v, ok)
	}
	if v, ok := e.Value("freshen_refresh_duration_seconds_count", "outcome", "success"); !ok || v < 1 {
		t.Errorf("refresh duration count = %v, %v; want >= 1", v, ok)
	}
	if v, ok := e.Value("freshen_accesses_total"); !ok || v != 5 {
		t.Errorf("freshen_accesses_total = %v, %v; want 5", v, ok)
	}
	if v, ok := e.Value("freshen_replans_total"); !ok || v < 1 {
		t.Errorf("freshen_replans_total = %v, %v; want >= 1", v, ok)
	}
	if v, ok := e.Value("freshen_breaker_state"); !ok || v != 0 {
		t.Errorf("freshen_breaker_state = %v, %v; want 0 (closed)", v, ok)
	}
	if v, ok := e.Value("freshen_quarantine_size"); !ok || v != 0 {
		t.Errorf("freshen_quarantine_size = %v, %v; want 0", v, ok)
	}
	if v, ok := e.Value("freshen_serve_requests_total", "route", "/object", "code", "200"); !ok || v != 5 {
		t.Errorf("serve_requests{/object,200} = %v, %v; want 5", v, ok)
	}
	if v, ok := e.Value("freshen_serve_requests_total", "route", "/object", "code", "404"); !ok || v != 1 {
		t.Errorf("serve_requests{/object,404} = %v, %v; want 1", v, ok)
	}
	if v, ok := e.Value("freshen_schedule_staleness_periods"); !ok || v < 0 {
		t.Errorf("freshen_schedule_staleness_periods = %v, %v", v, ok)
	}
	if v, ok := e.Value("freshen_last_snapshot_age_periods"); !ok || v != -1 {
		t.Errorf("snapshot age without persistence = %v, %v; want -1", v, ok)
	}
	if v, ok := e.Value("freshen_estimator_polls_total"); !ok || v < 1 {
		t.Errorf("freshen_estimator_polls_total = %v, %v; want >= 1", v, ok)
	}

	// The scrape itself must land in the serve-path counters on the
	// next scrape.
	e2 := scrape(t, api.URL+"/metrics")
	if v, ok := e2.Value("freshen_serve_requests_total", "route", "/metrics", "code", "200"); !ok || v < 1 {
		t.Errorf("serve_requests{/metrics,200} = %v, %v; want >= 1", v, ok)
	}
}

// TestMetricsMethodNotAllowed pins the contract that /metrics rejects
// non-GET with 405, never 404.
func TestMetricsMethodNotAllowed(t *testing.T) {
	_, m, _ := newInstrumentedMirror(t, []float64{1}, 1)
	api := httptest.NewServer(m.Handler())
	defer api.Close()
	resp, err := http.Post(api.URL+"/metrics", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics = %d; want 405", resp.StatusCode)
	}
}

// TestMetricsRouteAbsentWithoutRegistry: a mirror built without a
// registry serves no /metrics route at all.
func TestMetricsRouteAbsentWithoutRegistry(t *testing.T) {
	_, m := newTestPair(t, []float64{1}, 1)
	api := httptest.NewServer(m.Handler())
	defer api.Close()
	resp, err := http.Get(api.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /metrics without registry = %d; want 404", resp.StatusCode)
	}
}

// TestFaultMetrics trips quarantine and the breaker through the
// outcome path and checks the counters and gauges follow.
func TestFaultMetrics(t *testing.T) {
	_, m, reg := newInstrumentedMirror(t, []float64{1, 1}, 1)
	failure := fmt.Errorf("synthetic upstream failure")
	// Default policy: quarantine after 3 consecutive per-element
	// failures, breaker opens after 5 consecutive failures overall.
	for i := 0; i < 3; i++ {
		m.noteOutcome(0, 1, failure)
	}
	for i := 0; i < 2; i++ {
		m.noteOutcome(1, 1, failure)
	}

	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	e, err := obs.ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := e.Value("freshen_quarantine_events_total"); !ok || v != 1 {
		t.Errorf("freshen_quarantine_events_total = %v, %v; want 1", v, ok)
	}
	if v, ok := e.Value("freshen_quarantine_size"); !ok || v != 1 {
		t.Errorf("freshen_quarantine_size = %v, %v; want 1", v, ok)
	}
	if v, ok := e.Value("freshen_breaker_trips_total"); !ok || v != 1 {
		t.Errorf("freshen_breaker_trips_total = %v, %v; want 1", v, ok)
	}
	if v, ok := e.Value("freshen_breaker_state"); !ok || v != float64(BreakerOpen) {
		t.Errorf("freshen_breaker_state = %v, %v; want open", v, ok)
	}

	// A successful probe releases the element and closes the breaker.
	m.noteOutcome(0, 5, nil)
	b.Reset()
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	e2, err := obs.ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := e2.Value("freshen_recoveries_total"); !ok || v != 1 {
		t.Errorf("freshen_recoveries_total = %v, %v; want 1", v, ok)
	}
	if v, ok := e2.Value("freshen_quarantine_size"); !ok || v != 0 {
		t.Errorf("freshen_quarantine_size after recovery = %v, %v; want 0", v, ok)
	}
	if v, ok := e2.Value("freshen_breaker_state"); !ok || v != float64(BreakerClosed) {
		t.Errorf("freshen_breaker_state after success = %v, %v; want closed", v, ok)
	}
}

// TestHealthEndpointContentNegotiation pins the Accept-based split:
// JSON by default, bare ok/unavailable when text/plain is asked for.
func TestHealthEndpointContentNegotiation(t *testing.T) {
	_, m := newTestPair(t, []float64{1}, 1)
	api := httptest.NewServer(m.Handler())
	defer api.Close()

	get := func(path, accept string) (*http.Response, string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, api.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(body)
	}

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, body := get(path, "")
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s default Content-Type = %q; want application/json", path, ct)
		}
		if !strings.HasPrefix(body, "{") {
			t.Errorf("%s default body is not JSON: %q", path, body)
		}
		resp, body = get(path, "text/plain")
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Errorf("%s text Content-Type = %q; want text/plain", path, ct)
		}
		if strings.TrimSpace(body) != "ok" {
			t.Errorf("%s text body = %q; want ok", path, body)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s = %d; want 200", path, resp.StatusCode)
		}
	}
}

// TestReadyzPlainTextUnavailable: a cold persistent mirror is not
// ready, and the plain-text form must say so with a 503.
func TestReadyzPlainTextUnavailable(t *testing.T) {
	src, err := NewSimulatedSource([]float64{1}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(src.Handler())
	defer srv.Close()
	store, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	m, err := New(context.Background(), Config{
		Upstream: NewSourceClient(srv.URL, srv.Client()),
		Plan:     core.Config{Bandwidth: 1},
		Persist:  store,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	api := httptest.NewServer(m.Handler())
	defer api.Close()

	req, err := http.NewRequest(http.MethodGet, api.URL+"/readyz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("cold /readyz = %d; want 503", resp.StatusCode)
	}
	if strings.TrimSpace(string(body)) != "unavailable" {
		t.Errorf("cold /readyz body = %q; want unavailable", body)
	}
}
