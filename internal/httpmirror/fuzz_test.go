package httpmirror

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path"
	"strconv"
	"strings"
	"sync"
	"testing"

	"freshen/internal/core"
)

// fuzzMirror lazily builds one shared mirror (4 objects, ids 0–3) for
// the whole fuzzing process; the handler is stateless enough that
// sharing it across fuzz iterations only adds concurrency coverage.
var fuzzMirror struct {
	once    sync.Once
	handler http.Handler
	close   func()
	err     error
}

func fuzzHandler() (http.Handler, error) {
	fuzzMirror.once.Do(func() {
		src, err := NewSimulatedSource([]float64{2, 1, 0.5, 0}, nil, 1)
		if err != nil {
			fuzzMirror.err = err
			return
		}
		srv := httptest.NewServer(src.Handler())
		m, err := New(context.Background(), Config{
			Upstream: NewSourceClient(srv.URL, srv.Client()),
			Plan:     core.Config{Bandwidth: 4},
			Seed:     1,
		})
		if err != nil {
			srv.Close()
			fuzzMirror.err = err
			return
		}
		fuzzMirror.handler = m.Handler()
		fuzzMirror.close = srv.Close
	})
	return fuzzMirror.handler, fuzzMirror.err
}

// FuzzHTTPHandler throws arbitrary methods, paths and bodies at the
// mirror's public handler and asserts it never panics, always answers
// with a sane status, and honors the documented /object contract:
// malformed ids are 400, unknown ids 404, catalog ids 200 with an
// X-Version header.
func FuzzHTTPHandler(f *testing.F) {
	f.Add("GET", "/object/0", []byte{})
	f.Add("GET", "/object/banana", []byte{})
	f.Add("GET", "/object/99", []byte{})
	f.Add("GET", "/object/-1", []byte{})
	f.Add("POST", "/replan", []byte{})
	f.Add("GET", "/healthz", []byte{})
	f.Add("GET", "/status", []byte{})
	f.Add("PUT", "/object/1", []byte("x"))
	f.Add("DELETE", "/../../etc/passwd", []byte{})
	f.Add("GET", "/object/0/../1", []byte{})
	f.Fuzz(func(t *testing.T, method, rawPath string, body []byte) {
		h, err := fuzzHandler()
		if err != nil {
			t.Fatalf("building fuzz mirror: %v", err)
		}
		if !strings.HasPrefix(rawPath, "/") {
			rawPath = "/" + rawPath
		}
		req, err := http.NewRequest(method, "http://mirror.test"+rawPath, strings.NewReader(string(body)))
		if err != nil {
			return // not expressible as an HTTP request; nothing to test
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		code := rec.Code
		if code < 100 || code > 599 {
			t.Fatalf("%s %q: status %d outside the HTTP range", method, rawPath, code)
		}
		if code == http.StatusInternalServerError {
			t.Fatalf("%s %q: internal error: %s", method, rawPath, rec.Body.String())
		}
		// The /object contract. ServeMux answers unclean paths (dot
		// segments, doubled slashes) with a 301 to the cleaned form, so
		// the contract is only asserted on paths the mux routes as-is.
		clean := req.URL.Path
		canonical := path.Clean(clean)
		if canonical != "/" && strings.HasSuffix(clean, "/") {
			canonical += "/"
		}
		if method == http.MethodGet && clean == canonical && strings.HasPrefix(clean, "/object/") {
			rest := strings.TrimPrefix(clean, "/object/")
			id, convErr := strconv.Atoi(rest)
			switch {
			case convErr != nil:
				if code != http.StatusBadRequest {
					t.Fatalf("GET %q: status %d, want 400 for malformed id", rawPath, code)
				}
			case id < 0 || id >= 4:
				if code != http.StatusNotFound {
					t.Fatalf("GET %q: status %d, want 404 for unknown id %d", rawPath, code, id)
				}
			default:
				if code != http.StatusOK {
					t.Fatalf("GET %q: status %d, want 200 for catalog id %d", rawPath, code, id)
				}
				if rec.Header().Get("X-Version") == "" {
					t.Fatalf("GET %q: 200 without X-Version header", rawPath)
				}
			}
		}
	})
}
