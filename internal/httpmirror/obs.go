package httpmirror

import (
	"net/http"
	"strconv"
	"sync"
	"time"

	"freshen/internal/freshness"
	"freshen/internal/obs"
)

// mirrorMetrics is the mirror's registry-backed instrumentation. All
// methods are nil-receiver safe so the hot paths stay branchless when
// observability is off (Config.Metrics == nil).
//
// Two kinds of series coexist. Event counters (refreshes, transfers,
// breaker trips, …) count what THIS process did and reset on restart —
// standard Prometheus counter semantics; the restored lifetime totals
// stay on /status and in the snapshot. State gauges are either
// recomputed on the period clock (PF, staleness — each costs an exp
// per element, so once per period, not per scrape) or read live at
// scrape time through GaugeFunc closures (clock, breaker state,
// quarantine size — one mutex acquisition per scrape).
type mirrorMetrics struct {
	refreshSeconds *obs.HistogramVec // outcome: success|failure
	refreshes      *obs.CounterVec   // outcome: success|failure|skipped
	transfers      *obs.Counter
	notModified    *obs.Counter
	serveRequests  *obs.CounterVec // route, code
	breakerTrips   *obs.Counter
	quarEvents     *obs.Counter
	recoveries     *obs.Counter
	replans        *obs.Counter
	persistErrors  *obs.Counter
	exploreProbes  *obs.Counter
	canceled       *obs.Counter

	pf            *obs.Gauge
	avgFreshness  *obs.Gauge
	bandwidthUsed *obs.Gauge
	lambdaMean    *obs.Gauge
	lambdaError   *obs.Gauge
	exploreBW     *obs.Gauge
	confidence    *obs.Histogram
}

// instrumentMirror registers the mirror's series on reg and wires the
// scrape-time gauges to m. Called from New before any concurrency, and
// before recovery replay so replayed polls reach the estimator
// counters.
func instrumentMirror(m *Mirror, reg *obs.Registry) *mirrorMetrics {
	mm := &mirrorMetrics{
		refreshSeconds: reg.HistogramVec("freshen_refresh_duration_seconds",
			"Wall-clock time of one refresh attempt (HEAD, conditional GET, retries).",
			obs.LatencyBuckets(), "outcome"),
		refreshes: reg.CounterVec("freshen_refreshes_total",
			"Refresh attempts by outcome; skipped means the breaker was open.", "outcome"),
		transfers: reg.Counter("freshen_transfers_total",
			"Refreshes that found a changed object and transferred its body."),
		notModified: reg.Counter("freshen_source_not_modified_total",
			"Conditional refresh polls the upstream answered 304 for — no body transferred."),
		serveRequests: reg.CounterVec("freshen_serve_requests_total",
			"HTTP requests served, by route and status code.", "route", "code"),
		breakerTrips: reg.Counter("freshen_breaker_trips_total",
			"Circuit breaker closed-to-open transitions."),
		quarEvents: reg.Counter("freshen_quarantine_events_total",
			"Elements placed in quarantine."),
		recoveries: reg.Counter("freshen_recoveries_total",
			"Elements released from quarantine after a successful probe."),
		replans: reg.Counter("freshen_replans_total",
			"Schedule recomputations (cadence, fault-driven, and forced)."),
		persistErrors: reg.Counter("freshen_persist_write_failures_total",
			"Journal appends or snapshot commits the mirror absorbed as failed."),
		exploreProbes: reg.Counter("freshen_explore_probes_total",
			"Refreshes funded purely by the explore slice (elements the exploit plan left unfunded)."),
		canceled: reg.Counter("freshen_serve_canceled_total",
			"Admitted object reads whose client disconnected before the response; their limiter slots were released immediately."),

		pf: reg.Gauge("freshen_pf",
			"Live perceived freshness Σ pᵢ·F(fᵢ,λᵢ) under the current plan; recomputed once per period."),
		avgFreshness: reg.Gauge("freshen_avg_freshness",
			"Live unweighted mean freshness under the current plan; recomputed once per period."),
		bandwidthUsed: reg.Gauge("freshen_planned_bandwidth_used",
			"Bandwidth Σ sᵢ·fᵢ the current plan consumes."),
		lambdaMean: reg.Gauge("freshen_lambda_mean",
			"Mean estimated change rate across the catalog."),
		lambdaError: reg.Gauge("freshen_estimator_lambda_rel_error",
			"Mean relative error of the change-rate estimates against the configured ground truth; -1 when no truth is known."),
		exploreBW: reg.Gauge("freshen_explore_bandwidth",
			"Bandwidth the current plan dedicates to uncertainty-driven probing."),
		confidence: reg.Histogram("freshen_estimator_confidence",
			"Per-element estimator confidence (1 - uncertainty) observed at each learn pass.",
			[]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99}),
	}
	// No ground truth until the mirror reports one.
	mm.lambdaError.Set(-1)
	// The access total lives in the read path's striped counters; the
	// scrape sums the stripes instead of forcing every Access through
	// one shared counter cache line. Same family name and TYPE as the
	// plain counter it replaces, and like every event counter it
	// counts what this process did (restored lifetime totals stay on
	// /status).
	reg.CounterFunc("freshen_accesses_total",
		"Client object accesses served from the local copies.", func() float64 {
			return float64(m.acc.total())
		})
	// Scrape-time state gauges: each closure takes m.mu briefly. The
	// registry never calls them while the mirror holds its own locks,
	// so the lock order is always scrape → m.mu.
	reg.GaugeFunc("freshen_objects",
		"Objects in the mirrored catalog.", func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(len(m.copies))
		})
	reg.GaugeFunc("freshen_clock_periods",
		"The mirror's period clock.", func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return m.now
		})
	reg.GaugeFunc("freshen_schedule_staleness_periods",
		"Periods elapsed since the schedule was last recomputed.", func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return m.now - m.lastReplan
		})
	reg.GaugeFunc("freshen_breaker_state",
		"Circuit breaker state: 0 closed, 1 open, 2 half-open.", func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(m.brk.state)
		})
	reg.GaugeFunc("freshen_quarantine_size",
		"Elements currently quarantined.", func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(m.quarantined)
		})
	reg.GaugeFunc("freshen_last_snapshot_age_periods",
		"Periods since the last durable snapshot; -1 when none exists.", func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			if m.lastSnapshotAt < 0 {
				return -1
			}
			return m.now - m.lastSnapshotAt
		})
	reg.GaugeFunc("freshen_upstream_retries",
		"Upstream requests retried after a transient failure.", func() float64 {
			return float64(m.cfg.Upstream.Retries())
		})
	reg.GaugeFunc("freshen_upstream_failures",
		"Upstream requests that failed after exhausting retries.", func() float64 {
			return float64(m.cfg.Upstream.Failures())
		})
	// Overload and degradation series. The limiter's counters are pure
	// atomics; the mode word is published for lock-free reads; the
	// machine's own counters take m.mu like the other state gauges.
	reg.CounterFunc("freshen_shed_requests_total",
		"Object reads shed by admission control (503 + Retry-After).", func() float64 {
			return float64(m.limiter.Shed())
		})
	reg.CounterFunc("freshen_admitted_requests_total",
		"Object reads admitted past the concurrency limiter.", func() float64 {
			return float64(m.limiter.Admitted())
		})
	reg.GaugeFunc("freshen_inflight_requests",
		"Object reads currently admitted and in flight.", func() float64 {
			return float64(m.limiter.Inflight())
		})
	reg.GaugeFunc("freshen_inflight_limit",
		"Current adaptive concurrency limit (-1 when shedding is disabled).", func() float64 {
			return float64(m.limiter.Limit())
		})
	reg.GaugeFunc("freshen_mode",
		"Degradation mode bitmask: 0 full, +1 source-degraded, +2 persist-degraded.", func() float64 {
			return float64(m.modeWord.Load())
		})
	reg.CounterFunc("freshen_mode_transitions_total",
		"Degradation mode changes since this process started.", func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(m.machine.Transitions())
		})
	reg.GaugeFunc("freshen_consecutive_persist_failures",
		"Persist failures since the last successful fsync.", func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(m.machine.ConsecutivePersistFailures())
		})
	reg.CounterFunc("freshen_journal_skipped_total",
		"Journal appends withheld while persist-degraded.", func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(m.journalSkipped)
		})
	return mm
}

func (mm *mirrorMetrics) observeRefresh(elapsed time.Duration, err error) {
	if mm == nil {
		return
	}
	outcome := "success"
	if err != nil {
		outcome = "failure"
	}
	mm.refreshSeconds.With(outcome).Observe(elapsed.Seconds())
	mm.refreshes.With(outcome).Inc()
}

func (mm *mirrorMetrics) countSkipped() {
	if mm != nil {
		mm.refreshes.With("skipped").Inc()
	}
}

func (mm *mirrorMetrics) countTransfer() {
	if mm != nil {
		mm.transfers.Inc()
	}
}

func (mm *mirrorMetrics) countNotModified() {
	if mm != nil {
		mm.notModified.Inc()
	}
}

func (mm *mirrorMetrics) countBreakerTrip() {
	if mm != nil {
		mm.breakerTrips.Inc()
	}
}

func (mm *mirrorMetrics) countQuarantine() {
	if mm != nil {
		mm.quarEvents.Inc()
	}
}

func (mm *mirrorMetrics) countRecovery() {
	if mm != nil {
		mm.recoveries.Inc()
	}
}

func (mm *mirrorMetrics) countReplan() {
	if mm != nil {
		mm.replans.Inc()
	}
}

func (mm *mirrorMetrics) countPersistError() {
	if mm != nil {
		mm.persistErrors.Inc()
	}
}

func (mm *mirrorMetrics) countExploreProbe() {
	if mm != nil {
		mm.exploreProbes.Inc()
	}
}

func (mm *mirrorMetrics) countCanceled() {
	if mm != nil {
		mm.canceled.Inc()
	}
}

// setLambdaError publishes the estimator's mean relative error against
// the configured ground truth; -1 means no truth is known.
func (mm *mirrorMetrics) setLambdaError(v float64) {
	if mm != nil {
		mm.lambdaError.Set(v)
	}
}

func (mm *mirrorMetrics) setExploreBandwidth(v float64) {
	if mm != nil {
		mm.exploreBW.Set(v)
	}
}

// observeConfidence records each element's confidence (1 - uncertainty)
// so the histogram tracks how much of the catalog the estimator has
// pinned down. Called once per learn pass, off the hot path.
func (mm *mirrorMetrics) observeConfidence(uncertainty []float64) {
	if mm == nil {
		return
	}
	for _, u := range uncertainty {
		mm.confidence.Observe(1 - u)
	}
}

// updatePlanGaugesLocked refreshes the gauges that follow the plan:
// planned bandwidth and the mean change-rate estimate. Called on every
// replan, when the values actually move. Callers hold m.mu.
func (m *Mirror) updatePlanGaugesLocked() {
	mm := m.metrics
	if mm == nil {
		return
	}
	mm.bandwidthUsed.Set(m.plan.BandwidthUsed)
	var sum float64
	for i := range m.elems {
		sum += m.elems[i].Lambda
	}
	mm.lambdaMean.Set(sum / float64(len(m.elems)))
}

// updatePFGaugesLocked recomputes the live freshness gauges. Each
// evaluation costs one exp per element, so callers rate-limit to once
// per period (see Step); replans recompute immediately because the
// frequency vector just changed. Callers hold m.mu.
func (m *Mirror) updatePFGaugesLocked() {
	mm := m.metrics
	if mm == nil {
		return
	}
	pol := m.cfg.Plan.Policy
	if pol == nil {
		pol = freshness.FixedOrder{}
	}
	if pf, err := freshness.Perceived(pol, m.elems, m.plan.Freqs); err == nil {
		mm.pf.Set(pf)
	}
	if avg, err := freshness.Average(pol, m.elems, m.plan.Freqs); err == nil {
		mm.avgFreshness.Set(avg)
	}
	m.lastPFUpdate = m.now
}

// statusWriter captures the response code for the serve-path counters.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// swPool recycles statusWriter wrappers so the serve counters cost the
// hot path no allocation.
var swPool = sync.Pool{New: func() any { return new(statusWriter) }}

// countRequests wraps the mirror API with the per-route request
// counter. route is the normalized pattern, not the raw path, so the
// label set stays bounded. The 200 child is resolved once here —
// label lookup allocates, and the happy path must not — while error
// codes, which are off the hot path, look their child up per request.
func (mm *mirrorMetrics) countRequests(route string, h http.Handler) http.Handler {
	if mm == nil {
		return h
	}
	ok200 := mm.serveRequests.With(route, "200")
	// 304 is the other hot success code: a downstream mirror's
	// conditional polls answer it at steady state, so its child is
	// resolved once here too — label lookup allocates.
	ok304 := mm.serveRequests.With(route, "304")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := swPool.Get().(*statusWriter)
		sw.ResponseWriter, sw.code = w, 0
		h.ServeHTTP(sw, r)
		code := sw.code
		sw.ResponseWriter = nil
		swPool.Put(sw)
		switch code {
		case 0, http.StatusOK:
			ok200.Inc()
		case http.StatusNotModified:
			ok304.Inc()
		default:
			mm.serveRequests.With(route, strconv.Itoa(code)).Inc()
		}
	})
}
