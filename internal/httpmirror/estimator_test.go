package httpmirror

import (
	"context"
	"net/http/httptest"
	"testing"

	"freshen/internal/core"
)

// newExploreMirror builds a mirror with an online estimator and an
// explore slice over a simulated source with the given true rates.
func newExploreMirror(t *testing.T, lambdas []float64, bandwidth, exploreFrac float64) (*SimulatedSource, *Mirror) {
	t.Helper()
	src, err := NewSimulatedSource(lambdas, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(src.Handler())
	t.Cleanup(srv.Close)
	m, err := New(context.Background(), Config{
		Upstream:    NewSourceClient(srv.URL, srv.Client()),
		Plan:        core.Config{Bandwidth: bandwidth},
		ReplanEvery: 2,
		Estimator:   "mle",
		ExploreFrac: exploreFrac,
		TruthLambda: lambdas,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return src, m
}

// TestMirrorExploreProbesAndBudget drives a live mirror with an
// explore slice end to end: probe refreshes must actually happen and
// be counted, the slice's bandwidth must respect the configured cap,
// and the slice must anneal — as the estimator converges, the probe
// budget shrinks and its bandwidth flows back to exploitation.
func TestMirrorExploreProbesAndBudget(t *testing.T) {
	// Three hot objects carry all access traffic; the rest are static
	// and unaccessed, so the exploit plan starves them and only the
	// explore slice keeps them observable.
	lambdas := make([]float64, 12)
	for i := 0; i < 3; i++ {
		lambdas[i] = 4
	}
	const bandwidth, exploreFrac = 6.0, 0.3
	src, m := newExploreMirror(t, lambdas, bandwidth, exploreFrac)

	cap := bandwidth * exploreFrac
	var firstBW float64
	for step := 1; step <= 300; step++ {
		tm := 0.5 * float64(step)
		src.Advance(tm)
		if _, err := m.Step(tm); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 3; k++ {
			if _, _, err := m.Access(step % 3); err != nil {
				t.Fatal(err)
			}
		}
		st := m.Status()
		if st.ExploreBandwidth > cap+1e-9 {
			t.Fatalf("step %d: explore bandwidth %v exceeds cap %v", step, st.ExploreBandwidth, cap)
		}
		if firstBW == 0 && st.ExploreBandwidth > 0 {
			firstBW = st.ExploreBandwidth
		}
	}
	st := m.Status()
	if st.ExploreProbes == 0 {
		t.Error("no explore probes counted over 150 periods")
	}
	if firstBW == 0 {
		t.Fatal("explore slice never received bandwidth")
	}
	// Annealing: a cold mirror's slice starts near the cap (every
	// element at uncertainty 1) and must shrink substantially once the
	// catalog is well estimated.
	if firstBW < 0.8*cap {
		t.Errorf("cold explore bandwidth %v, want near cap %v", firstBW, cap)
	}
	if st.ExploreBandwidth > firstBW/2 {
		t.Errorf("explore bandwidth did not anneal: first %v, final %v", firstBW, st.ExploreBandwidth)
	}
	if st.Estimator != "mle" || st.ExploreFrac != exploreFrac {
		t.Errorf("status reports estimator %q frac %v", st.Estimator, st.ExploreFrac)
	}
}

// TestMirrorExploreDisabled pins the zero-config behavior: without an
// explore fraction the mirror runs pure exploitation — no probe
// bandwidth, no probe counts.
func TestMirrorExploreDisabled(t *testing.T) {
	src, m := newTestPair(t, []float64{4, 1, 0.2, 0.2}, 4)
	for step := 1; step <= 20; step++ {
		tm := 0.5 * float64(step)
		src.Advance(tm)
		if _, err := m.Step(tm); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Status()
	if st.ExploreProbes != 0 || st.ExploreBandwidth != 0 {
		t.Errorf("explore active without ExploreFrac: probes=%d bw=%v",
			st.ExploreProbes, st.ExploreBandwidth)
	}
}

// TestOnlineEstimatorRestartContinuity round-trips an online (MLE)
// estimator through snapshot and restart: the recovered mirror must
// resume with the exact pre-crash estimates — convergence carries
// across the restart instead of resetting to the prior.
func TestOnlineEstimatorRestartContinuity(t *testing.T) {
	f := newFaultySource(t, []float64{3, 1, 0.5, 2})
	dir := t.TempDir()
	mod := func(c *Config) {
		c.Estimator = "mle"
		c.ExploreFrac = 0.2
	}
	m1, _ := newPersistMirror(t, f.srv.URL, f.srv.Client(), dir, 1, 1000, mod)
	for step := 1; step <= 40; step++ {
		tm := 0.25 * float64(step)
		f.src.Advance(tm)
		if _, err := m1.Step(tm); err != nil {
			t.Fatal(err)
		}
		m1.Access(step % 4)
	}
	if err := m1.FlushSnapshot(); err != nil {
		t.Fatal(err)
	}
	preEst, err := m1.estimatesSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	pre := m1.est.Estimate(0)
	if pre.Polls == 0 {
		t.Fatal("setup: object 0 never polled")
	}

	m2, _ := newPersistMirror(t, f.srv.URL, f.srv.Client(), dir, 1, 1000, mod)
	if got := m2.Status().Estimator; got != "mle" {
		t.Fatalf("recovered estimator kind %q", got)
	}
	postEst, err := m2.estimatesSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i := range preEst {
		if preEst[i] != postEst[i] {
			t.Errorf("element %d: recovered λ̂ %v != pre-crash %v", i, postEst[i], preEst[i])
		}
	}
	// Confidence survives too: the recovered estimator remembers how
	// much it has seen, not just where it landed.
	post := m2.est.Estimate(0)
	if post.Polls != pre.Polls || post.StdErr != pre.StdErr {
		t.Errorf("estimator state reset: pre polls=%d stderr=%v, post polls=%d stderr=%v",
			pre.Polls, pre.StdErr, post.Polls, post.StdErr)
	}
	// And the restarted mirror keeps learning from where it left off.
	f.src.Advance(11)
	if _, err := m2.Step(11); err != nil {
		t.Fatal(err)
	}
	if got := m2.est.Estimate(0); got.Polls <= post.Polls {
		t.Errorf("recovered estimator not observing: polls %d -> %d", post.Polls, got.Polls)
	}
}
