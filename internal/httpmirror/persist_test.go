package httpmirror

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"freshen/internal/core"
	"freshen/internal/freshness"
	"freshen/internal/persist"
)

// newPersistMirror builds a mirror over src with persistence in dir.
// mod, when non-nil, adjusts the config before New.
func newPersistMirror(t *testing.T, url string, httpClient *http.Client, dir string, attempts int, snapshotEvery float64, mod func(*Config)) (*Mirror, *persist.Store) {
	t.Helper()
	store, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	client := NewSourceClient(url, httpClient)
	client.SetRetryPolicy(fastRetry(attempts))
	cfg := Config{
		Upstream:      client,
		Plan:          core.Config{Bandwidth: 16},
		ReplanEvery:   2,
		Persist:       store,
		SnapshotEvery: snapshotEvery,
		Seed:          5,
	}
	if mod != nil {
		mod(&cfg)
	}
	m, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, store
}

// TestMirrorSnapshotAndRecover round-trips a mirror through a flush
// and a restart: estimates, plan, counters, and health state must all
// survive byte-exactly.
func TestMirrorSnapshotAndRecover(t *testing.T) {
	f := newFaultySource(t, []float64{3, 1, 0.5, 2})
	dir := t.TempDir()
	m1, _ := newPersistMirror(t, f.srv.URL, f.srv.Client(), dir, 1, 1000, nil)

	// Accumulate observations, an access profile, and a quarantined
	// element (object 0 — funded by the plan, so it is actually
	// refreshed — breaks for long enough to trip quarantine).
	for step := 1; step <= 40; step++ {
		tm := 0.25 * float64(step)
		f.src.Advance(tm)
		if step == 20 {
			f.brokenID.Store(0)
		}
		if _, err := m1.Step(tm); err != nil {
			t.Fatal(err)
		}
		m1.Access(step % 3) // skewed profile: objects 0-2 only
	}
	if m1.Status().Quarantined != 1 {
		t.Fatalf("setup: quarantined = %d, want 1", m1.Status().Quarantined)
	}
	if err := m1.FlushSnapshot(); err != nil {
		t.Fatal(err)
	}
	preEst, err := m1.estimatesSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	pre := m1.Status()

	// Heal the upstream before restart: New re-seeds bodies, and the
	// recovered quarantine state must come from the snapshot, not from
	// fresh failures.
	f.brokenID.Store(-1)
	m2, _ := newPersistMirror(t, f.srv.URL, f.srv.Client(), dir, 1, 1000, nil)
	rd := m2.Readiness()
	if !rd.Ready || !rd.Recovered || rd.RecoveryStatus != "recovered" {
		t.Fatalf("readiness after recovery = %+v", rd)
	}
	postEst, err := m2.estimatesSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i := range preEst {
		if preEst[i] != postEst[i] {
			t.Errorf("element %d: recovered estimate %v != pre-crash %v", i, postEst[i], preEst[i])
		}
	}
	post := m2.Status()
	if post.Quarantined != pre.Quarantined || post.QuarantineEvents != pre.QuarantineEvents {
		t.Errorf("quarantine state lost: pre %d/%d, post %d/%d",
			pre.Quarantined, pre.QuarantineEvents, post.Quarantined, post.QuarantineEvents)
	}
	if post.Transfers != pre.Transfers || post.RefreshFailures != pre.RefreshFailures {
		t.Errorf("counters lost: pre transfers=%d failures=%d, post transfers=%d failures=%d",
			pre.Transfers, pre.RefreshFailures, post.Transfers, post.RefreshFailures)
	}
	if post.Accesses != pre.Accesses {
		t.Errorf("access log lost: pre %d, post %d", pre.Accesses, post.Accesses)
	}
	// The schedule warm-starts from the persisted frequency vector.
	preFreqs, postFreqs := m1.Plan().Freqs, m2.Plan().Freqs
	for i := range preFreqs {
		if preFreqs[i] != postFreqs[i] {
			t.Errorf("freq %d: recovered %v != pre-crash %v", i, postFreqs[i], preFreqs[i])
		}
	}
	// A recovered mirror keeps stepping from its restored clock.
	f.src.Advance(11)
	if _, err := m2.Step(11); err != nil {
		t.Fatal(err)
	}
}

// TestKillRestartRecovery is the kill-and-restart chaos test: a
// mirror runs under injected upstream faults, is hard-stopped
// mid-period (no flush, no close — the crash), and a second mirror
// recovers from the state directory. Recovered λ estimates must match
// the pre-crash estimator exactly (every observation was journaled
// before the refresh returned), and the recovered plan must be closer
// to the true-rate optimum than a cold start's — the "re-converges
// faster" guarantee, measured at the restart boundary.
func TestKillRestartRecovery(t *testing.T) {
	// Equal change rates: what the crashed mirror has learned — and
	// the cold start lacks — is the skewed access profile, which the
	// plan is built around. (Per-element λ learning has its own
	// plan-driven-sampling biases that would muddy the comparison.)
	trueLambdas := []float64{1.5, 1.5, 1.5, 1.5, 1.5, 1.5, 1.5, 1.5}
	src, err := NewSimulatedSource(trueLambdas, nil, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic chaos: every 5th request fails while enabled.
	// Single-attempt clients see ~20% refresh failures; three-attempt
	// clients always recover (two consecutive counts can't both be
	// multiples of five).
	var calls atomic.Int64
	var faultsOn atomic.Bool
	inner := src.Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if faultsOn.Load() && calls.Add(1)%5 == 0 {
			http.Error(w, "injected", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)

	// Tight bandwidth so the allocation genuinely matters, and health
	// machinery disabled so the warm-vs-cold plan comparison measures
	// estimation quality, not which elements happened to quarantine.
	chaosCfg := func(cfg *Config) {
		cfg.Plan = core.Config{Bandwidth: 6}
		cfg.Fault = FaultPolicy{QuarantineAfter: -1, BreakerThreshold: -1}
	}
	dir := t.TempDir()
	m1, _ := newPersistMirror(t, srv.URL, srv.Client(), dir, 1, 3, chaosCfg)
	faultsOn.Store(true)
	// Drive 20 periods under faults with a geometrically skewed access
	// pattern; snapshots land on the 3-period cadence, journal records
	// in between. accCount is the ground-truth profile the warm boot
	// should know and the cold boot cannot.
	var accCount [8]int
	access := func(m *Mirror, step int) {
		for id, every := range []int{1, 2, 4, 8, 16, 32} {
			if step%every == 0 {
				m.Access(id)
				accCount[id]++
			}
		}
	}
	for step := 1; step <= 80; step++ {
		tm := 0.25 * float64(step)
		src.Advance(tm)
		if _, err := m1.Step(tm); err != nil {
			t.Fatal(err)
		}
		access(m1, step)
	}
	// Hard stop mid-period at t=20.4: no FlushSnapshot, no Close.
	src.Advance(20.4)
	if _, err := m1.Step(20.4); err != nil {
		t.Fatal(err)
	}
	preEst, err := m1.estimatesSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	pre := m1.Status()
	if pre.RefreshFailures == 0 {
		t.Fatal("chaos injected no refresh failures; the test is not exercising the fault path")
	}
	if m1.Readiness().Snapshots == 0 {
		t.Fatal("no snapshot landed before the crash")
	}

	// Restart from disk — still under injected faults; the recovery
	// client retries so seeding survives them.
	m2, store2 := newPersistMirror(t, srv.URL, srv.Client(), dir, 3, 3, chaosCfg)
	rec := store2.Recovery()
	if rec.Snapshot == nil {
		t.Fatal("no snapshot recovered")
	}
	rd := m2.Readiness()
	if !rd.Ready || !rd.Recovered {
		t.Fatalf("recovered mirror not ready: %+v", rd)
	}
	if rd.JournalReplayed != len(rec.Records) {
		t.Errorf("replayed %d of %d journal records", rd.JournalReplayed, len(rec.Records))
	}

	// Every pre-crash observation was fsynced before the refresh
	// committed, so the recovered estimator is exact, not approximate.
	postEst, err := m2.estimatesSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	const tol = 1e-12
	for i := range preEst {
		if diff := math.Abs(postEst[i] - preEst[i]); diff > tol*math.Max(1, preEst[i]) {
			t.Errorf("element %d: recovered λ̂ %v differs from pre-crash %v by %v", i, postEst[i], preEst[i], diff)
		}
	}
	if got := m2.Status(); got.Fetches < pre.Fetches {
		t.Errorf("fetch counter went backwards: %d < %d", got.Fetches, pre.Fetches)
	}

	// Cold start for comparison: same source, no state dir.
	coldClient := NewSourceClient(srv.URL, srv.Client())
	coldClient.SetRetryPolicy(fastRetry(3))
	m3, err := New(context.Background(), Config{
		Upstream:    coldClient,
		Plan:        core.Config{Bandwidth: 6},
		ReplanEvery: 2,
		Seed:        5,
		Fault:       FaultPolicy{QuarantineAfter: -1, BreakerThreshold: -1},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Re-convergence: evaluate each boot plan under the TRUE workload
	// (real change rates, real access skew) and compare to the
	// true-workload optimum. The warm plan must be strictly closer —
	// it resumes the profile the crashed mirror spent 20 periods
	// learning, while the cold plan assumes a uniform one.
	n := len(trueLambdas)
	totalAcc := 0
	for _, c := range accCount {
		totalAcc += c
	}
	trueElems := make([]freshness.Element, n)
	for i, l := range trueLambdas {
		trueElems[i] = freshness.Element{ID: i, Lambda: l, AccessProb: float64(accCount[i]) / float64(totalAcc), Size: 1}
	}
	optPlan, err := core.MakePlan(trueElems, core.Config{Bandwidth: 6})
	if err != nil {
		t.Fatal(err)
	}
	pol := freshness.FixedOrder{}
	realized := func(m *Mirror) float64 {
		pf, err := freshness.Perceived(pol, trueElems, m.Plan().Freqs)
		if err != nil {
			t.Fatal(err)
		}
		return pf
	}
	warmGap := optPlan.Perceived - realized(m2)
	coldGap := optPlan.Perceived - realized(m3)
	if !(warmGap < coldGap) {
		t.Errorf("warm start no closer to optimum: warm gap %v, cold gap %v", warmGap, coldGap)
	}
	t.Logf("PF gap to true-rate optimum: warm %.5f vs cold %.5f (optimum %.5f)", warmGap, coldGap, optPlan.Perceived)
}

// TestReadyzLifecycle pins the readiness contract: a cold persistent
// mirror answers 503 until its first snapshot lands, then 200; a
// mirror without persistence is ready immediately.
func TestReadyzLifecycle(t *testing.T) {
	f := newFaultySource(t, []float64{1, 1})
	dir := t.TempDir()
	m, _ := newPersistMirror(t, f.srv.URL, f.srv.Client(), dir, 1, 2, nil)
	srv := httptest.NewServer(m.Handler())
	t.Cleanup(srv.Close)

	get := func() (int, Readiness) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rd Readiness
		if err := json.NewDecoder(resp.Body).Decode(&rd); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, rd
	}

	code, rd := get()
	if code != http.StatusServiceUnavailable || rd.Ready {
		t.Fatalf("cold persistent mirror: /readyz = %d ready=%v, want 503 before the first snapshot", code, rd.Ready)
	}
	if !rd.PersistenceEnabled || rd.RecoveryStatus != "cold-start" {
		t.Errorf("readiness body = %+v", rd)
	}
	if rd.LastSnapshotAge != -1 {
		t.Errorf("last snapshot age %v before any snapshot, want -1", rd.LastSnapshotAge)
	}

	// Cross the snapshot cadence: ready flips to 200.
	f.src.Advance(2.5)
	if _, err := m.Step(2.5); err != nil {
		t.Fatal(err)
	}
	code, rd = get()
	if code != http.StatusOK || !rd.Ready || rd.Snapshots == 0 {
		t.Fatalf("after first snapshot: /readyz = %d %+v", code, rd)
	}
	if rd.LastSnapshotAge < 0 {
		t.Errorf("last snapshot age %v after a snapshot", rd.LastSnapshotAge)
	}
	if rd.BreakerState != "closed" || rd.Quarantined != 0 {
		t.Errorf("fault state in readiness = %+v", rd)
	}

	// Method contract matches the other endpoints.
	resp, err := http.Post(srv.URL+"/readyz", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /readyz = %d, want 405", resp.StatusCode)
	}

	// A mirror without persistence is born ready.
	client := NewSourceClient(f.srv.URL, f.srv.Client())
	client.SetRetryPolicy(fastRetry(1))
	plain, err := New(context.Background(), Config{Upstream: client, Plan: core.Config{Bandwidth: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if rd := plain.Readiness(); !rd.Ready || rd.PersistenceEnabled || rd.RecoveryStatus != "disabled" {
		t.Errorf("persistence-free readiness = %+v", rd)
	}
}

// TestRecoveryDiscardsMismatchedCatalog points a state dir from a
// 4-object catalog at a 2-object source: the state must be discarded
// loudly (cold start, reason in the readiness report), never mapped
// onto the wrong objects.
func TestRecoveryDiscardsMismatchedCatalog(t *testing.T) {
	dir := t.TempDir()
	f4 := newFaultySource(t, []float64{1, 1, 1, 1})
	m1, _ := newPersistMirror(t, f4.srv.URL, f4.srv.Client(), dir, 1, 1000, nil)
	f4.src.Advance(3)
	if _, err := m1.Step(3); err != nil {
		t.Fatal(err)
	}
	if err := m1.FlushSnapshot(); err != nil {
		t.Fatal(err)
	}

	f2 := newFaultySource(t, []float64{1, 1})
	m2, _ := newPersistMirror(t, f2.srv.URL, f2.srv.Client(), dir, 1, 1000, nil)
	rd := m2.Readiness()
	if rd.Recovered {
		t.Fatal("mismatched snapshot recovered")
	}
	if rd.Ready {
		t.Error("mirror ready without durable state")
	}
	if rd.RecoveryStatus == "cold-start" || rd.RecoveryStatus == "recovered" {
		t.Errorf("discard not reported: %q", rd.RecoveryStatus)
	}
	if got, err := m2.estimatesSnapshot(); err != nil || len(got) != 2 {
		t.Fatalf("estimates after discard: %v, %v", got, err)
	}
}

// rewriteSnapshot decodes the snapshot in dir, lets the caller mutate
// it, and writes it back with a freshly computed CRC — framing intact,
// payload poisoned. EncodeSnapshot validates, so the frame is rebuilt
// by hand (magic "FRSNAP01", little-endian length + CRC-32C); this is
// the on-disk layout the format doc pins.
func rewriteSnapshot(t *testing.T, dir string, mutate func(*persist.Snapshot)) {
	t.Helper()
	path := filepath.Join(dir, persist.SnapshotFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := persist.DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	mutate(snap)
	payload, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.WriteString("FRSNAP01")
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)))
	buf.Write(hdr[:])
	buf.Write(payload)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryDiscardsPoisonedEstimatorValues plants impossible values
// in a persisted estimator section — CRC valid, payload poisoned. The
// snapshot Validate gate must refuse the whole file, and the mirror
// must come up on the journal alone with the discard reason in its
// readiness report, not silently load a negative change rate.
func TestRecoveryDiscardsPoisonedEstimatorValues(t *testing.T) {
	f := newFaultySource(t, []float64{3, 1, 0.5, 2})
	dir := t.TempDir()
	mod := func(c *Config) { c.Estimator = "mle" }
	m1, store := newPersistMirror(t, f.srv.URL, f.srv.Client(), dir, 1, 1000, mod)
	for step := 1; step <= 20; step++ {
		tm := 0.25 * float64(step)
		f.src.Advance(tm)
		if _, err := m1.Step(tm); err != nil {
			t.Fatal(err)
		}
	}
	if err := m1.FlushSnapshot(); err != nil {
		t.Fatal(err)
	}
	// A few more steps past the snapshot so the (reset) journal holds
	// records for the fallback to replay, then crash.
	for step := 21; step <= 28; step++ {
		tm := 0.25 * float64(step)
		f.src.Advance(tm)
		if _, err := m1.Step(tm); err != nil {
			t.Fatal(err)
		}
	}
	store.Close()

	rewriteSnapshot(t, dir, func(s *persist.Snapshot) {
		if s.Estimator == nil || len(s.Estimator.Elements) == 0 {
			t.Fatal("setup: snapshot carries no estimator state")
		}
		s.Estimator.Elements[0].Lambda = -1
	})

	m2, _ := newPersistMirror(t, f.srv.URL, f.srv.Client(), dir, 1, 1000, mod)
	rd := m2.Readiness()
	if !rd.Recovered || rd.JournalReplayed == 0 {
		t.Fatalf("journal-only recovery did not happen: %+v", rd)
	}
	if !strings.Contains(rd.RecoveryStatus, "snapshot discarded") ||
		!strings.Contains(rd.RecoveryStatus, "estimator element 0") {
		t.Errorf("discard reason not surfaced: %q", rd.RecoveryStatus)
	}
	// Nothing of the poisoned state leaked into the live estimator.
	est, err := m2.estimatesSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range est {
		if !(v >= 0) || math.IsInf(v, 0) {
			t.Errorf("element %d: estimate %v after discard", i, v)
		}
	}
	f.src.Advance(8)
	if _, err := m2.Step(8); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryDiscardsMismatchedEstimatorKind rewrites a persisted
// estimator section under a kind the mirror does not run. Per-element
// state from a different estimator family cannot be mapped, so the
// section is discarded loudly and the estimator re-converges from the
// persisted poll histories — the rest of the snapshot still loads.
func TestRecoveryDiscardsMismatchedEstimatorKind(t *testing.T) {
	f := newFaultySource(t, []float64{3, 1, 0.5, 2})
	dir := t.TempDir()
	mod := func(c *Config) { c.Estimator = "mle" }
	m1, store := newPersistMirror(t, f.srv.URL, f.srv.Client(), dir, 1, 1000, mod)
	for step := 1; step <= 40; step++ {
		tm := 0.25 * float64(step)
		f.src.Advance(tm)
		if _, err := m1.Step(tm); err != nil {
			t.Fatal(err)
		}
	}
	if err := m1.FlushSnapshot(); err != nil {
		t.Fatal(err)
	}
	pre := m1.Status()
	store.Close()

	rewriteSnapshot(t, dir, func(s *persist.Snapshot) {
		if s.Estimator == nil {
			t.Fatal("setup: snapshot carries no estimator state")
		}
		s.Estimator.Kind = "bogus"
	})

	m2, _ := newPersistMirror(t, f.srv.URL, f.srv.Client(), dir, 1, 1000, mod)
	rd := m2.Readiness()
	if !rd.Recovered {
		t.Fatalf("snapshot rejected wholesale for an estimator-only mismatch: %+v", rd)
	}
	if !strings.Contains(rd.RecoveryStatus, "estimator state discarded") ||
		!strings.Contains(rd.RecoveryStatus, `"bogus"`) {
		t.Errorf("discard reason not surfaced: %q", rd.RecoveryStatus)
	}
	// The estimator re-converged from the replayed poll histories: it
	// has observations again, and the rest of the snapshot survived.
	if got := m2.est.Estimate(0); got.Polls == 0 {
		t.Error("estimator empty after history replay")
	}
	post := m2.Status()
	if post.Transfers != pre.Transfers || post.RefreshFailures != pre.RefreshFailures {
		t.Errorf("catalog state lost with the estimator section: pre transfers=%d failures=%d, post transfers=%d failures=%d",
			pre.Transfers, pre.RefreshFailures, post.Transfers, post.RefreshFailures)
	}
	f.src.Advance(11)
	if _, err := m2.Step(11); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryJournalOnly crashes before any snapshot: the journal
// alone must restore the estimator.
func TestRecoveryJournalOnly(t *testing.T) {
	f := newFaultySource(t, []float64{2, 0.5})
	dir := t.TempDir()
	m1, _ := newPersistMirror(t, f.srv.URL, f.srv.Client(), dir, 1, 1000, nil)
	for step := 1; step <= 12; step++ {
		tm := 0.5 * float64(step)
		f.src.Advance(tm)
		if _, err := m1.Step(tm); err != nil {
			t.Fatal(err)
		}
	}
	preEst, err := m1.estimatesSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Crash: no flush.
	m2, _ := newPersistMirror(t, f.srv.URL, f.srv.Client(), dir, 1, 1000, nil)
	rd := m2.Readiness()
	if !rd.Recovered || rd.RecoveryStatus != "recovered (journal only)" || rd.JournalReplayed == 0 {
		t.Fatalf("journal-only readiness = %+v", rd)
	}
	postEst, err := m2.estimatesSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i := range preEst {
		if preEst[i] != postEst[i] {
			t.Errorf("element %d: %v != %v", i, postEst[i], preEst[i])
		}
	}
}
