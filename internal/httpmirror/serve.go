package httpmirror

import (
	"fmt"
	"strconv"
	"sync/atomic"
)

// This file is the lock-free serving path. The mirror's mutable state
// (m.copies, the plan, health, counters) stays under m.mu, but readers
// never touch it: Access and the /object handler serve from an
// immutable snapshot published behind an atomic pointer, and record
// accesses into striped atomic counters. See DESIGN.md §11 for the
// publication protocol.

// errAccessOutOfRange is the preallocated not-found error Access
// returns for any id outside the catalog. A single shared value means
// hostile or miss-heavy traffic cannot allocate-storm the server; the
// offending id is not interpolated, but the HTTP layer already maps
// the error to a plain 404 and callers test it with
// errors.Is(err, ErrNotFound).
var errAccessOutOfRange = fmt.Errorf("%w: id outside the catalog", ErrNotFound)

// copyView is one object as the read path sees it: the body and the
// version it was fetched at, captured together so a reader can never
// observe a torn body/version pair.
type copyView struct {
	body    []byte
	version int
}

// serveSnapshot is the immutable serving state: one view per object.
// A snapshot is never mutated after publication — refresh commits
// build a new slice and swap the pointer (RCU; the garbage collector
// is the grace period, reclaiming an old snapshot once the last
// reader drops it).
type serveSnapshot struct {
	views []copyView
}

// publishServingLocked builds a fresh immutable snapshot from m.copies
// and atomically swaps it in. Callers hold m.mu (or are New, before
// any concurrency), which serializes writers; the atomic store is the
// release barrier that makes the fully built views visible to the
// next Access. Cost is one O(n) slice of view headers per call —
// bodies are shared, not copied — so it runs only when a body or
// version actually changed: after seeding, after a refresh commit
// that transferred a new body, and after restart recovery. Replans
// and metric updates never touch the serving state and do not swap.
func (m *Mirror) publishServingLocked() {
	views := make([]copyView, len(m.copies))
	for i := range m.copies {
		views[i] = copyView{body: m.copies[i].body, version: m.copies[i].version}
	}
	m.serve.Store(&serveSnapshot{views: views})
}

// accessStripes is the number of padded cells the global access total
// is striped over. Power of two; 64 cells × 64 B keeps the whole
// array inside one page while giving concurrent readers on different
// objects distinct cache lines to increment.
const accessStripes = 64

// paddedCount is one stripe, padded out to a cache line so adjacent
// stripes never share one (false sharing would serialize the very
// increments the striping exists to spread).
type paddedCount struct {
	n atomic.Uint64
	_ [56]byte
}

// accessCounters is the lock-free access accounting the read path
// writes and the learning/status paths drain:
//
//   - elems is one plain atomic per object — the per-object counts the
//     profile learner needs. Step drains them (Swap(0)) into
//     copyState.accesses under m.mu at period boundaries, so
//     learnLocked and the persisted snapshot see exactly the counts
//     the old mutex path produced.
//   - stripes is the global total, striped so the hottest objects of a
//     Zipf community don't all contend one cache line. Stripes are
//     cumulative for the process lifetime (never drained): the live
//     global count is an O(64) sum, which Status and the
//     freshen_accesses_total scrape read directly without touching
//     the per-object counters.
type accessCounters struct {
	elems   []atomic.Uint64
	stripes [accessStripes]paddedCount
}

func newAccessCounters(n int) *accessCounters {
	return &accessCounters{elems: make([]atomic.Uint64, n)}
}

// record counts one access: the object's own counter plus one global
// stripe. The stripe index is a multiplicative hash of the id so
// neighboring (and Zipf-popular) objects land on different cache
// lines. Two relaxed atomic adds, no locks, no allocation.
func (a *accessCounters) record(id int) {
	a.elems[id].Add(1)
	a.stripes[(uint32(id)*2654435761)>>26].n.Add(1)
}

// total sums the global stripes: the number of accesses recorded by
// this process so far. Each stripe is monotone, so concurrent calls
// are monotone too (a sum may lag in-flight increments but never
// counts one twice).
func (a *accessCounters) total() uint64 {
	var t uint64
	for i := range a.stripes {
		t += a.stripes[i].n.Load()
	}
	return t
}

// drainInto folds the per-object counters accumulated since the last
// drain into dst (dst[i].accesses += count). Callers hold m.mu: the
// swap is atomic per object, so a drain concurrent with live Access
// traffic loses nothing — increments that arrive after an object's
// swap simply wait for the next drain.
func (a *accessCounters) drainInto(dst []copyState) {
	for i := range a.elems {
		if v := a.elems[i].Swap(0); v != 0 {
			dst[i].accesses += int(v)
		}
	}
}

// versionHeaders caches the pre-built one-element header slice for
// small version numbers, letting the /object handler attach
// X-Version without the per-request []string{...} allocation.
// Versions beyond the cache (long-lived, fast-changing objects) fall
// back to one small allocation.
var versionHeaders = func() [][]string {
	vs := make([][]string, 256)
	for i := range vs {
		vs[i] = []string{strconv.Itoa(i)}
	}
	return vs
}()
