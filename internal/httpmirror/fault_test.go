package httpmirror

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"freshen/internal/core"
)

// faultySource wraps a simulated source behind a server whose faults
// the test controls deterministically: a global "down" switch and a
// single broken object id.
type faultySource struct {
	src      *SimulatedSource
	srv      *httptest.Server
	down     atomic.Bool
	brokenID atomic.Int64
}

func newFaultySource(t *testing.T, lambdas []float64) *faultySource {
	t.Helper()
	src, err := NewSimulatedSource(lambdas, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := &faultySource{src: src}
	f.brokenID.Store(-1)
	inner := src.Handler()
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if f.down.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		if id := f.brokenID.Load(); id >= 0 && strings.HasPrefix(r.URL.Path, fmt.Sprintf("/object/%d", id)) {
			http.Error(w, "broken object", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(f.srv.Close)
	return f
}

// fastRetry keeps test retries quick.
func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{
		MaxAttempts: attempts,
		Timeout:     time.Second,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
	}
}

func newFaultMirror(t *testing.T, f *faultySource, bandwidth float64, fault FaultPolicy) *Mirror {
	t.Helper()
	client := NewSourceClient(f.srv.URL, f.srv.Client())
	client.SetRetryPolicy(fastRetry(1))
	m, err := New(context.Background(), Config{
		Upstream:    client,
		Plan:        core.Config{Bandwidth: bandwidth},
		ReplanEvery: 1000, // cadence replans off: plans change only on health events
		Fault:       fault,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRetryRecoversTransientFailures(t *testing.T) {
	// The upstream fails each call's first two attempts; a client with
	// three attempts per call succeeds anyway.
	var calls atomic.Int64
	src, err := NewSimulatedSource([]float64{1}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	inner := src.Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1)%3 != 0 {
			http.Error(w, "flaky", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()
	client := NewSourceClient(srv.URL, srv.Client())
	client.SetRetryPolicy(fastRetry(3))
	ctx := context.Background()
	if _, err := client.Catalog(ctx); err != nil {
		t.Fatalf("catalog did not survive transient failures: %v", err)
	}
	if _, err := client.Version(ctx, 0); err != nil {
		t.Fatalf("version did not survive transient failures: %v", err)
	}
	if client.Retries() == 0 {
		t.Error("no retries recorded")
	}
	if client.Failures() != 0 {
		t.Errorf("Failures = %d, want 0", client.Failures())
	}
}

func TestBreakerOpensSkipsAndRecovers(t *testing.T) {
	f := newFaultySource(t, []float64{1, 1})
	m := newFaultMirror(t, f, 4, FaultPolicy{
		BreakerThreshold: 3,
		BreakerCooldown:  1,
		QuarantineAfter:  -1, // isolate the breaker
	})

	if _, err := m.Step(1); err != nil {
		t.Fatal(err)
	}
	if st := m.Status(); st.BreakerState != "closed" || st.RefreshFailures != 0 {
		t.Fatalf("healthy mirror: %+v", st)
	}

	// Outage: the batch aggregates failures instead of aborting, the
	// breaker opens after 3 of them, and the rest are skipped.
	f.down.Store(true)
	if _, err := m.Step(3); err != nil {
		t.Fatalf("Step must not abort on refresh failures: %v", err)
	}
	st := m.Status()
	if st.BreakerState != "open" {
		t.Fatalf("breaker state = %s, want open", st.BreakerState)
	}
	if st.RefreshFailures < 3 {
		t.Errorf("RefreshFailures = %d, want >= 3 (threshold)", st.RefreshFailures)
	}
	if st.SkippedRefreshes == 0 {
		t.Error("no refreshes skipped while the breaker was open")
	}
	if st.BreakerTrips == 0 {
		t.Error("breaker never tripped")
	}
	// Skipped polls never reach the estimator: the mirror still serves.
	if _, _, err := m.Access(0); err != nil {
		t.Fatalf("mirror stopped serving during outage: %v", err)
	}

	// Still down past the cooldown: the half-open probe fails and the
	// breaker reopens.
	if _, err := m.Step(5); err != nil {
		t.Fatal(err)
	}
	if st := m.Status(); st.BreakerState != "open" || st.BreakerTrips < 2 {
		t.Fatalf("probe against a dead upstream must reopen: %+v", st)
	}

	// Upstream back: the next probe closes the breaker and refreshes
	// flow again.
	f.down.Store(false)
	f.src.Advance(8)
	n, err := m.Step(8)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("no refreshes after recovery")
	}
	if st := m.Status(); st.BreakerState != "closed" {
		t.Errorf("breaker state = %s after recovery, want closed", st.BreakerState)
	}
}

func TestQuarantineExcludesAndReadmits(t *testing.T) {
	f := newFaultySource(t, []float64{1, 1, 1})
	m := newFaultMirror(t, f, 6, FaultPolicy{
		BreakerThreshold: -1, // isolate quarantine
		QuarantineAfter:  2,
		ProbeEvery:       1,
	})
	baseline := m.Status().PlannedPF
	baseFreq := m.Plan().Freqs[1]
	if baseFreq <= 0 {
		t.Fatalf("element 1 not scheduled at baseline: %v", m.Plan().Freqs)
	}

	// Break object 1 only; walk time forward until it quarantines.
	f.brokenID.Store(1)
	for now := 0.25; now <= 4; now += 0.25 {
		if _, err := m.Step(now); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Status()
	if st.Quarantined != 1 || st.QuarantineEvents != 1 {
		t.Fatalf("quarantine did not engage: %+v", st)
	}
	plan := m.Plan()
	if plan.Freqs[1] != 0 {
		t.Errorf("quarantined element still scheduled at %v", plan.Freqs[1])
	}
	// Its budget water-filled back across the healthy elements.
	if plan.Freqs[0] <= baseFreq || plan.Freqs[2] <= baseFreq {
		t.Errorf("freed budget not redistributed: %v (baseline per-element %v)", plan.Freqs, baseFreq)
	}
	// The degraded copy still serves.
	if _, _, err := m.Access(1); err != nil {
		t.Fatalf("quarantined object stopped serving: %v", err)
	}

	// Heal it; the next probe readmits it and the plan converges back.
	f.brokenID.Store(-1)
	for now := 4.25; now <= 8; now += 0.25 {
		if _, err := m.Step(now); err != nil {
			t.Fatal(err)
		}
	}
	st = m.Status()
	if st.Quarantined != 0 || st.Recoveries != 1 {
		t.Fatalf("element did not recover: %+v", st)
	}
	if got := m.Plan().Freqs[1]; got <= 0 {
		t.Errorf("recovered element not rescheduled: freq %v", got)
	}
	if pf := m.Status().PlannedPF; math.Abs(pf-baseline) > 0.05*baseline {
		t.Errorf("planned PF %v did not return to baseline %v", pf, baseline)
	}
}

func TestStepClockMovedBackwards(t *testing.T) {
	f := newFaultySource(t, []float64{1, 1})
	m := newFaultMirror(t, f, 2, FaultPolicy{})
	if _, err := m.Step(3); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(2.9); err == nil {
		t.Fatal("clock moving backwards must fail")
	}
	// The failed call left the clock untouched; equal time is fine.
	if got := m.Status().Now; got != 3 {
		t.Errorf("Now = %v after rejected step, want 3", got)
	}
	if _, err := m.Step(3); err != nil {
		t.Errorf("equal-time step rejected: %v", err)
	}
}

func TestStepReplanCadenceBoundary(t *testing.T) {
	f := newFaultySource(t, []float64{1, 1})
	client := NewSourceClient(f.srv.URL, f.srv.Client())
	client.SetRetryPolicy(fastRetry(1))
	m, err := New(context.Background(), Config{
		Upstream:    client,
		Plan:        core.Config{Bandwidth: 2},
		ReplanEvery: 10,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(9.999); err != nil {
		t.Fatal(err)
	}
	if got := m.Status().Replans; got != 1 {
		t.Fatalf("replanned before the cadence elapsed: %d", got)
	}
	// Exactly now - lastReplan == ReplanEvery must replan.
	if _, err := m.Step(10); err != nil {
		t.Fatal(err)
	}
	if got := m.Status().Replans; got != 2 {
		t.Errorf("Replans = %d at the exact cadence boundary, want 2", got)
	}
}

func TestRunResumeNeverDrivesTimeBackwards(t *testing.T) {
	f := newFaultySource(t, []float64{1, 1})
	m := newFaultMirror(t, f, 2, FaultPolicy{})
	if _, err := m.Step(5); err != nil {
		t.Fatal(err)
	}
	// Two consecutive Runs (as after an error-restart) resume from the
	// mirror clock instead of rewinding it to zero.
	for i := 0; i < 2; i++ {
		before := m.Status().Now
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- m.Run(ctx, 20*time.Millisecond) }()
		time.Sleep(50 * time.Millisecond)
		cancel()
		if err := <-done; err != nil {
			t.Fatalf("Run %d returned %v", i, err)
		}
		if now := m.Status().Now; now < before {
			t.Fatalf("Run %d drove time backwards: %v -> %v", i, before, now)
		}
	}
	if now := m.Status().Now; now < 5 {
		t.Errorf("resumed Run rewound the clock below the stepped time: %v", now)
	}
}

func TestHandlerObjectStatusCodes(t *testing.T) {
	f := newFaultySource(t, []float64{1, 1})
	m := newFaultMirror(t, f, 2, FaultPolicy{})
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	cases := []struct {
		path string
		want int
	}{
		{"/object/1", http.StatusOK},
		{"/object/abc", http.StatusBadRequest},     // malformed id
		{"/object/1.5", http.StatusBadRequest},     // malformed id
		{"/object/", http.StatusBadRequest},        // empty id
		{"/object/99", http.StatusNotFound},        // out of range
		{"/object/-2", http.StatusNotFound},        // out of range
		{"/object/999999999", http.StatusNotFound}, // out of range
	}
	for _, tc := range cases {
		resp, err := srv.Client().Get(srv.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("GET %s = %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
	}
}

func TestHandlerHealthz(t *testing.T) {
	f := newFaultySource(t, []float64{1, 1})
	m := newFaultMirror(t, f, 2, FaultPolicy{BreakerThreshold: 2, QuarantineAfter: 1, BreakerCooldown: 100})
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	get := func() Health {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/healthz = %s", resp.Status)
		}
		var h Health
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h
	}

	h := get()
	if !h.Serving || h.BreakerState != "closed" || len(h.Quarantined) != 0 {
		t.Fatalf("healthy /healthz = %+v", h)
	}

	// Degrade the upstream: healthz reflects quarantine and breaker.
	f.down.Store(true)
	if _, err := m.Step(3); err != nil {
		t.Fatal(err)
	}
	h = get()
	if !h.Serving {
		t.Error("mirror must report serving through an outage")
	}
	if h.BreakerState == "closed" {
		t.Error("breaker state not reflected in /healthz")
	}
	if len(h.Quarantined) == 0 {
		t.Error("quarantined objects not reflected in /healthz")
	}
	if h.RefreshFailures == 0 {
		t.Error("refresh failures not reflected in /healthz")
	}
}

// TestChaosMirrorSurvives is the acceptance scenario: a mirror driven
// through a 20% upstream fault rate, a deterministic per-object
// failure, and a full-outage window keeps serving, its Run loop never
// returns an error, quarantined objects re-enter the plan after
// recovery, and the planned PF re-converges to the fault-free plan.
func TestChaosMirrorSurvives(t *testing.T) {
	f := newFaultySource(t, []float64{1, 1, 1, 1, 1, 1})
	chaos, err := NewChaosTransport(f.srv.Client().Transport, ChaosConfig{
		ErrorRate: 0, // clean during seeding; ramped to 0.2 below
		StallProb: 0.01,
		Seed:      42,
	})
	if err != nil {
		t.Fatal(err)
	}
	client := NewSourceClient(f.srv.URL, &http.Client{Transport: chaos})
	client.SetRetryPolicy(RetryPolicy{
		MaxAttempts: 3,
		Timeout:     80 * time.Millisecond, // converts stalls into retries
		BaseBackoff: time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
	})
	m, err := New(context.Background(), Config{
		Upstream:    client,
		Plan:        core.Config{Bandwidth: 10},
		ReplanEvery: 1000,
		Fault: FaultPolicy{
			BreakerThreshold: 5,
			BreakerCooldown:  1,
			QuarantineAfter:  2,
			ProbeEvery:       0.5,
		},
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	faultFreePF := m.Status().PlannedPF

	api := httptest.NewServer(m.Handler())
	defer api.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const period = 40 * time.Millisecond

	// Wall-clock driver for the source.
	go func() {
		start := time.Now()
		for ctx.Err() == nil {
			f.src.Advance(time.Since(start).Seconds() / period.Seconds())
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Continuous client traffic: every access must succeed, throughout
	// every fault phase.
	served := make(chan int, 1)
	go func() {
		n := 0
		for i := 0; ctx.Err() == nil; i++ {
			resp, err := api.Client().Get(fmt.Sprintf("%s/object/%d", api.URL, i%6))
			if err != nil {
				if ctx.Err() == nil {
					t.Errorf("access during chaos failed: %v", err)
				}
				break
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || len(body) == 0 {
				t.Errorf("access during chaos: %s %q", resp.Status, body)
				break
			}
			n++
			time.Sleep(4 * time.Millisecond)
		}
		served <- n
	}()

	runDone := make(chan error, 1)
	go func() { runDone <- m.Run(ctx, period) }()

	waitFor := func(what string, deadline time.Duration, ok func(Status) bool) {
		t.Helper()
		end := time.Now().Add(deadline)
		for time.Now().Before(end) {
			if ok(m.Status()) {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s: %+v", what, m.Status())
	}

	// Phase 1: 20% fault rate. The pipeline rides it out on retries.
	chaos.SetErrorRate(0.2)
	time.Sleep(8 * period)

	// Phase 2: one object breaks hard and must be quarantined — its
	// planned frequency drops to zero. (Random faults may quarantine
	// other objects too; they recover in phase 4.)
	f.brokenID.Store(3)
	quarantineEnd := time.Now().Add(10 * time.Second)
	for m.Plan().Freqs[3] != 0 && time.Now().Before(quarantineEnd) {
		time.Sleep(5 * time.Millisecond)
	}
	if freq := m.Plan().Freqs[3]; freq != 0 {
		t.Fatalf("broken object never quarantined, still planned at %v: %+v", freq, m.Status())
	}
	f.brokenID.Store(-1)

	// Phase 3: full outage. The breaker opens; the mirror keeps
	// serving and skips refreshes instead of recording non-changes.
	chaos.SetOutage(true)
	waitFor("breaker to open", 10*time.Second, func(st Status) bool {
		return st.BreakerState != "closed" && st.SkippedRefreshes > 0
	})
	chaos.SetOutage(false)

	// Phase 4: recovery. Breaker closes, quarantined objects re-enter.
	waitFor("full recovery", 15*time.Second, func(st Status) bool {
		return st.BreakerState == "closed" && st.Quarantined == 0 && st.Recoveries >= 1
	})

	cancel()
	if err := <-runDone; err != nil {
		t.Fatalf("Run returned an error under chaos: %v", err)
	}
	if n := <-served; n == 0 {
		t.Fatal("no accesses served during the chaos run")
	}

	st := m.Status()
	if st.Retries == 0 {
		t.Error("no retries recorded under a 20% fault rate")
	}
	if st.BreakerTrips == 0 {
		t.Error("breaker never tripped during the outage")
	}
	if got := m.Plan().Freqs[3]; got <= 0 {
		t.Errorf("recovered object not back in the plan: freq %v", got)
	}
	if math.Abs(st.PlannedPF-faultFreePF) > 0.05*faultFreePF {
		t.Errorf("planned PF %v did not re-converge to the fault-free %v", st.PlannedPF, faultFreePF)
	}
}
