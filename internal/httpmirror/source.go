package httpmirror

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"freshen/internal/stats"
)

// CatalogEntry describes one object a source offers.
type CatalogEntry struct {
	ID   int     `json:"id"`
	Size float64 `json:"size"`
}

// Source is the upstream a mirror refreshes from. *SourceClient is the
// HTTP implementation; the fleet layer wraps one to expose a shard's
// slice of a global catalog under dense local ids. Implementations
// must be safe for concurrent use.
type Source interface {
	// Catalog lists the objects the source offers; ids must be dense
	// starting at 0.
	Catalog(ctx context.Context) ([]CatalogEntry, error)
	// Fetch downloads one object's body and current version.
	Fetch(ctx context.Context, id int) (body []byte, version int, err error)
	// Version reveals an object's current version without the body —
	// the cheap change poll.
	Version(ctx context.Context, id int) (int, error)
	// Retries and Failures report the source's lifetime transport
	// counters (attempts beyond the first; calls that exhausted every
	// attempt).
	Retries() int64
	Failures() int64
}

// ConditionalSource is an optional Source extension for origins that
// answer version-conditional fetches. FetchIfNewer sends the caller's
// last-seen version; a source still holding it reports notModified with
// no body, so an unchanged poll costs headers instead of a transfer —
// the saving that makes deep mirror chains affordable, since every
// level repolls the one above it. The mirror probes for this interface
// and falls back to the HEAD-then-GET protocol when the source either
// does not implement it or demonstrably ignores the condition.
type ConditionalSource interface {
	FetchIfNewer(ctx context.Context, id, have int) (body []byte, version int, notModified bool, err error)
}

// UpstreamHealth is an optional Source extension for sources that are
// themselves mirrors (hierarchy.MirrorSource). It surfaces the
// upstream tier's own degradation signals so a downstream mirror can
// compound them into its serving headers: a regional mirror that is
// source-degraded hands out stale copies with X-Staleness-Periods set,
// and an edge mirror refreshing from it must add that age to its own
// when it tells clients how stale they are.
type UpstreamHealth interface {
	// UpstreamDegraded reports whether the upstream tier most recently
	// identified itself as source-degraded.
	UpstreamDegraded() bool
	// UpstreamStaleness returns the upstream's last-reported staleness
	// for an object, in periods (0 when the upstream is healthy or has
	// not reported).
	UpstreamStaleness(id int) float64
	// UpstreamURL identifies the upstream tier for topology walks.
	UpstreamURL() string
}

// SimulatedSource is an origin whose objects change as independent
// Poisson processes on a caller-supplied clock (time is in periods, as
// everywhere in this repository). It is safe for concurrent use.
type SimulatedSource struct {
	mu      sync.Mutex
	rng     *stats.RNG
	lambdas []float64
	sizes   []float64
	version []int
	nextUp  []float64 // time of each object's next update
	now     float64
}

// NewSimulatedSource creates a source with the given change rates and
// sizes (sizes may be nil for unit sizes). All objects start at
// version 0 at time 0.
func NewSimulatedSource(lambdas, sizes []float64, seed int64) (*SimulatedSource, error) {
	if len(lambdas) == 0 {
		return nil, fmt.Errorf("httpmirror: source needs at least one object")
	}
	if sizes != nil && len(sizes) != len(lambdas) {
		return nil, fmt.Errorf("httpmirror: %d sizes for %d objects", len(sizes), len(lambdas))
	}
	s := &SimulatedSource{
		rng:     stats.NewRNG(seed),
		lambdas: append([]float64(nil), lambdas...),
		version: make([]int, len(lambdas)),
		nextUp:  make([]float64, len(lambdas)),
	}
	if sizes == nil {
		s.sizes = make([]float64, len(lambdas))
		for i := range s.sizes {
			s.sizes[i] = 1
		}
	} else {
		s.sizes = append([]float64(nil), sizes...)
	}
	for i, l := range lambdas {
		if l < 0 {
			return nil, fmt.Errorf("httpmirror: object %d has negative change rate %v", i, l)
		}
		s.nextUp[i] = s.next(l, 0)
	}
	return s, nil
}

// next returns the next Poisson event time after t for rate l, or +Inf
// for rate 0.
func (s *SimulatedSource) next(l, t float64) float64 {
	if l <= 0 {
		return inf
	}
	return t + s.rng.ExpFloat64()/l
}

const inf = 1e308

// Advance moves the source clock forward, applying any updates due.
func (s *SimulatedSource) Advance(now float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if now > s.now {
		s.now = now
	}
	for i := range s.lambdas {
		for s.nextUp[i] <= s.now {
			s.version[i]++
			s.nextUp[i] = s.next(s.lambdas[i], s.nextUp[i])
		}
	}
}

// Now returns the source clock.
func (s *SimulatedSource) Now() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Version returns an object's current version.
func (s *SimulatedSource) Version(id int) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id < 0 || id >= len(s.version) {
		return 0, fmt.Errorf("httpmirror: object %d outside [0, %d)", id, len(s.version))
	}
	return s.version[id], nil
}

// Catalog lists the source's objects.
func (s *SimulatedSource) Catalog() []CatalogEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]CatalogEntry, len(s.lambdas))
	for i := range out {
		out[i] = CatalogEntry{ID: i, Size: s.sizes[i]}
	}
	return out
}

// Handler serves the source protocol over HTTP.
func (s *SimulatedSource) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/catalog", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(s.Catalog()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/object/", func(w http.ResponseWriter, r *http.Request) {
		idStr := strings.TrimPrefix(r.URL.Path, "/object/")
		id, err := strconv.Atoi(idStr)
		if err != nil {
			http.Error(w, "bad object id", http.StatusBadRequest)
			return
		}
		ver, err := s.Version(id)
		if err != nil {
			http.Error(w, "no such object", http.StatusNotFound)
			return
		}
		w.Header().Set("X-Version", strconv.Itoa(ver))
		switch r.Method {
		case http.MethodHead:
			// headers only
		case http.MethodGet:
			// Version-conditional fetch: a client already holding the
			// current version gets 304 and no body.
			if ifv := r.Header.Get("X-If-Version"); ifv != "" {
				if have, err := strconv.Atoi(ifv); err == nil && have == ver {
					w.WriteHeader(http.StatusNotModified)
					return
				}
			}
			fmt.Fprintf(w, "object %d version %d", id, ver)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	return mux
}
