package httpmirror

import (
	"fmt"
	"math"
	"time"

	"freshen/internal/core"
	"freshen/internal/estimate"
	"freshen/internal/persist"
	"freshen/internal/schedule"
)

// applyRecovery folds the store's salvaged state into a freshly built
// mirror: the snapshot restores the estimator histories, learned
// rates and profile, breaker/quarantine state, clock, and counters;
// the journal records observed after that snapshot replay through the
// same commit path live refreshes use. It returns the restored plan
// (to warm-start the schedule) or nil when none was usable. Called
// from New, before seeding, with no concurrency yet.
func (m *Mirror) applyRecovery(rec persist.RecoveryResult) *persist.PlanState {
	n := len(m.elems)
	m.recoveryStatus = "cold-start"
	if rec.SnapshotErr != nil {
		m.recoveryStatus = fmt.Sprintf("cold-start (snapshot discarded: %v)", rec.SnapshotErr)
		m.log.Warn("persisted snapshot discarded; recovering from journal only", "error", rec.SnapshotErr)
	}
	var plan *persist.PlanState
	if s := rec.Snapshot; s != nil {
		if len(s.Elements) != n {
			// The catalog changed shape under the state dir. Per-element
			// state can't be mapped safely, so none of it is loaded —
			// but loudly, via the readiness report, never silently.
			m.recoveryStatus = fmt.Sprintf("cold-start (state discarded: snapshot has %d elements, catalog has %d)", len(s.Elements), n)
			return nil
		}
		m.now = s.Now
		m.lastSnapshotAt = s.Now
		for i := range s.Elements {
			e := &s.Elements[i]
			m.elems[i].Lambda = e.Lambda
			m.elems[i].AccessProb = e.AccessProb
			c := &m.copies[i]
			c.version = e.StoredVersion
			c.fetchedAt = e.FetchedAt
			c.lastPoll = e.LastPoll
			c.fetches = e.Fetches
			c.accesses = e.Accesses
			h := &m.health[i]
			h.consecFails = e.ConsecFails
			h.quarantined = e.Quarantined
			h.quarantinedAt = e.QuarantinedAt
			h.lastProbe = e.LastProbe
			if e.Quarantined {
				m.quarantined++
			}
			for _, p := range e.History {
				// Validated on load; Record only rejects what Validate
				// already excluded.
				m.tracker.Record(i, p.Elapsed, p.Changed)
			}
		}
		// Status first, estimator second: restoreEstimatorLocked appends
		// its discard note to the status, and the note must survive.
		m.recoveryStatus = "recovered"
		m.restoreEstimatorLocked(s)
		m.brk.state = BreakerState(s.Breaker.State)
		m.brk.fails = s.Breaker.Fails
		m.brk.openedAt = s.Breaker.OpenedAt
		m.brk.trips = s.Breaker.Trips
		m.accessBase = s.Counters.Accesses
		m.fetches = s.Counters.Fetches
		m.transfers = s.Counters.Transfers
		m.replans = s.Counters.Replans
		m.refreshFailures = s.Counters.RefreshFailures
		m.skippedRefreshes = s.Counters.SkippedRefreshes
		m.quarantineEvents = s.Counters.QuarantineEvents
		m.recoveries = s.Counters.Recoveries
		plan = &s.Plan
	}
	for _, r := range rec.Records {
		if r.Element >= n {
			// A record beyond the catalog means the journal belongs to
			// a different world; stop replaying rather than guess.
			m.recoveryStatus = fmt.Sprintf("%s (journal replay stopped: record targets element %d of %d)", m.recoveryStatus, r.Element, n)
			break
		}
		m.replayJournalRecord(r)
		m.replayed++
	}
	if rec.Snapshot == nil && m.replayed > 0 {
		m.recoveryStatus = "recovered (journal only)"
		if rec.SnapshotErr != nil {
			// Keep the discard reason visible: "journal only" on its own
			// reads like a pre-first-snapshot crash, not a rejected file.
			m.recoveryStatus = fmt.Sprintf("recovered (journal only; snapshot discarded: %v)", rec.SnapshotErr)
		}
	}
	m.recovered = rec.Snapshot != nil || m.replayed > 0
	return plan
}

// restoreEstimatorLocked rebuilds the online estimator from a
// recovered snapshot. Preferred path: the snapshot's estimator state
// restores directly, so convergence resumes exactly where the crash
// interrupted it. Fallback (older snapshot, kind changed between
// runs, or state the estimator itself rejects): the persisted poll
// histories — already replayed into the tracker — replay into the
// online estimator, which re-converges from the same observations.
// The history kind needs neither: the tracker replay above is its
// state.
//
// Rejections are loud, like the catalog-mismatch path: NewFromState
// re-validates every λ̂ and Fisher-information field (NaN, negative,
// infinite — belt and braces on top of persist's snapshot Validate
// gate), and a snapshot whose estimator section fails it is discarded
// with a warning and a readiness-visible status note, never loaded.
func (m *Mirror) restoreEstimatorLocked(s *persist.Snapshot) {
	if m.est == estimate.Estimator(m.tracker) {
		return
	}
	if es := s.Estimator; es != nil {
		if es.Kind == m.est.Kind() {
			st := estimate.State{Kind: es.Kind, Elements: make([]estimate.ElementState, len(es.Elements))}
			for i, e := range es.Elements {
				st.Elements[i] = estimate.ElementState{
					Lambda:     e.Lambda,
					Info:       e.Info,
					Polls:      e.Polls,
					Changes:    e.Changes,
					SumElapsed: e.SumElapsed,
				}
			}
			est, err := estimate.NewFromState(st, m.estParams)
			if err == nil {
				m.est = est
				return
			}
			m.recoveryStatus = fmt.Sprintf("%s (estimator state discarded: %v)", m.recoveryStatus, err)
			m.log.Warn("persisted estimator state discarded; re-converging from poll histories",
				"kind", es.Kind, "error", err)
		} else {
			m.recoveryStatus = fmt.Sprintf("%s (estimator state discarded: snapshot has %q, mirror runs %q)",
				m.recoveryStatus, es.Kind, m.est.Kind())
			m.log.Warn("persisted estimator state discarded; re-converging from poll histories",
				"snapshot_kind", es.Kind, "mirror_kind", m.est.Kind())
		}
	}
	for i := range s.Elements {
		for _, p := range s.Elements[i].History {
			m.est.Observe(i, p.Elapsed, p.Changed)
		}
	}
}

// replayJournalRecord re-applies one journaled refresh outcome exactly
// as the live pipeline would have: successful polls feed the
// estimator and version bookkeeping, failures feed the breaker and
// quarantine counters.
func (m *Mirror) replayJournalRecord(r persist.Record) {
	if r.At > m.now {
		m.now = r.At
	}
	if r.Kind == persist.KindFailure {
		m.noteOutcomeLocked(r.Element, r.At, fmt.Errorf("replayed failure"))
		return
	}
	c := &m.copies[r.Element]
	if r.Elapsed > 0 {
		m.recordPollLocked(r.Element, r.Elapsed, r.Changed)
	}
	c.lastPoll = r.At
	m.verified[r.Element].Store(math.Float64bits(r.At))
	c.fetches++
	m.fetches++
	if r.Changed {
		c.version = r.Version
		c.fetchedAt = r.At
		m.transfers++
	}
	m.noteOutcomeLocked(r.Element, r.At, nil)
}

// restorePlanLocked warm-starts the schedule from a persisted plan:
// the iterator resumes the pre-crash frequency vector immediately, so
// a recovered mirror refreshes on its learned cadence from the first
// period instead of re-solving from scratch. The next cadence replan
// refines it against the replayed observations.
func (m *Mirror) restorePlanLocked(ps persist.PlanState) error {
	if len(ps.Freqs) != len(m.elems) {
		return fmt.Errorf("httpmirror: restored plan has %d frequencies for %d elements", len(ps.Freqs), len(m.elems))
	}
	iter, err := schedule.NewIterator(ps.Freqs, true, m.cfg.Seed+int64(m.replans))
	if err != nil {
		return err
	}
	m.plan = core.Plan{
		Freqs:         append([]float64(nil), ps.Freqs...),
		Perceived:     ps.Perceived,
		AvgFreshness:  ps.AvgFreshness,
		BandwidthUsed: ps.BandwidthUsed,
		Strategy:      m.cfg.Plan.Strategy,
		NumPartitions: m.cfg.Plan.NumPartitions,
	}
	m.iter = iter
	m.iterBase = m.now
	m.lastReplan = m.now
	m.replans++
	return nil
}

// exportStateLocked builds the durable image of the mirror's current
// state. Callers hold m.mu.
func (m *Mirror) exportStateLocked() *persist.Snapshot {
	// Fold live access counts in first so the persisted per-element
	// profile matches what the read path has recorded so far.
	m.acc.drainInto(m.copies)
	s := &persist.Snapshot{
		Version: persist.FormatVersion,
		Now:     m.now,
		Plan: persist.PlanState{
			Freqs:         append([]float64(nil), m.plan.Freqs...),
			Perceived:     m.plan.Perceived,
			AvgFreshness:  m.plan.AvgFreshness,
			BandwidthUsed: m.plan.BandwidthUsed,
		},
		Breaker: persist.BreakerSnap{
			State:    int(m.brk.state),
			Fails:    m.brk.fails,
			OpenedAt: m.brk.openedAt,
			Trips:    m.brk.trips,
		},
		Elements: make([]persist.ElementState, len(m.elems)),
		Counters: persist.Counters{
			Accesses:         m.totalAccessesLocked(),
			Fetches:          m.fetches,
			Transfers:        m.transfers,
			Replans:          m.replans,
			RefreshFailures:  m.refreshFailures,
			SkippedRefreshes: m.skippedRefreshes,
			QuarantineEvents: m.quarantineEvents,
			Recoveries:       m.recoveries,
		},
	}
	histories := m.tracker.Export()
	for i := range m.elems {
		e, c, h := &m.elems[i], &m.copies[i], &m.health[i]
		es := persist.ElementState{
			ID:            e.ID,
			Lambda:        e.Lambda,
			AccessProb:    e.AccessProb,
			Size:          e.Size,
			StoredVersion: c.version,
			FetchedAt:     c.fetchedAt,
			LastPoll:      c.lastPoll,
			Fetches:       c.fetches,
			Accesses:      c.accesses,
			Quarantined:   h.quarantined,
			QuarantinedAt: h.quarantinedAt,
			LastProbe:     h.lastProbe,
			ConsecFails:   h.consecFails,
		}
		if hist := histories[i]; len(hist) > 0 {
			es.History = make([]persist.PollObs, len(hist))
			for j, p := range hist {
				es.History[j] = persist.PollObs{Elapsed: p.Elapsed, Changed: p.Changed}
			}
		}
		s.Elements[i] = es
	}
	if m.est != estimate.Estimator(m.tracker) {
		// The online estimator's O(1)-per-element state rides along so a
		// restart resumes convergence instead of replaying histories.
		st := m.est.ExportState()
		snap := &persist.EstimatorSnap{Kind: st.Kind, Elements: make([]persist.EstimatorElem, len(st.Elements))}
		for i, e := range st.Elements {
			snap.Elements[i] = persist.EstimatorElem{
				Lambda:     e.Lambda,
				Info:       e.Info,
				Polls:      e.Polls,
				Changes:    e.Changes,
				SumElapsed: e.SumElapsed,
			}
		}
		s.Estimator = snap
	}
	return s
}

// commitSnapshot durably installs a snapshot built by
// exportStateLocked. Callers hold stepMu but not m.mu: the fsyncs in
// Commit must never block Access. Outcomes feed the mode machine — a
// failure grows the persist-degraded backoff, a success is the fsync
// proof that clears the mode.
func (m *Mirror) commitSnapshot(snap *persist.Snapshot) error {
	err := m.store.Commit(snap)
	m.mu.Lock()
	if err != nil {
		m.persistErrors++
		m.metrics.countPersistError()
		m.machine.PersistFailed(snap.Now)
		m.publishModeLocked()
		m.mu.Unlock()
		m.log.Warn("snapshot failed", "now", snap.Now, "error", err)
		return err
	}
	m.snapshots++
	m.lastSnapshotAt = snap.Now
	m.ready = true
	m.machine.PersistSucceeded()
	m.publishModeLocked()
	m.mu.Unlock()
	m.log.Debug("snapshot committed", "now", snap.Now, "elements", len(snap.Elements))
	return nil
}

// FlushSnapshot writes a snapshot of the current state immediately —
// the graceful-shutdown hook. It serializes against the refresh
// pipeline, so an in-flight Step completes before the state is
// captured. A mirror without persistence flushes trivially.
func (m *Mirror) FlushSnapshot() error {
	if m.store == nil {
		return nil
	}
	m.stepMu.Lock()
	defer m.stepMu.Unlock()
	m.mu.Lock()
	snap := m.exportStateLocked()
	m.lastSnapshot = m.now
	m.mu.Unlock()
	return m.commitSnapshot(snap)
}

// appendJournal journals one record, counting (never propagating) the
// failure: a sick state disk costs durability of recent observations,
// not availability of the mirror. While persist-degraded, appends are
// withheld entirely — every one would eat an fsync timeout against a
// dead disk at refresh rate — and counted as skipped; the snapshot
// backoff probes own re-entry into full mode. The per-record warn is
// rate-limited to one line per interval with a suppressed count.
func (m *Mirror) appendJournal(r persist.Record) {
	if m.store == nil {
		return
	}
	m.mu.Lock()
	if !m.machine.JournalEnabled() {
		m.journalSkipped++
		m.mu.Unlock()
		return
	}
	m.mu.Unlock()

	err := m.store.Append(r)

	m.mu.Lock()
	if err == nil {
		// A successful fsynced append is disk-health evidence too: it
		// resets the consecutive-failure run.
		m.machine.PersistSucceeded()
		m.publishModeLocked()
		m.mu.Unlock()
		return
	}
	m.persistErrors++
	m.metrics.countPersistError()
	m.machine.PersistFailed(r.At)
	m.publishModeLocked()
	m.mu.Unlock()
	if emit, suppressed := m.journalWarn.Allow(time.Now()); emit {
		m.log.Warn("journal append failed",
			"element", r.Element, "error", err, "suppressed_since_last", suppressed)
	}
}

// journalFailure records one failed refresh attempt.
func (m *Mirror) journalFailure(id int, at float64) {
	m.appendJournal(persist.Record{Kind: persist.KindFailure, Element: id, At: at})
}

// Readiness is the mirror's readiness report, served by /readyz. A
// mirror is ready once its learned state is durable or was recovered:
// with persistence enabled, that means after boot recovery or after
// the first snapshot lands; without it, immediately.
type Readiness struct {
	Ready              bool    `json:"ready"`
	PersistenceEnabled bool    `json:"persistence_enabled"`
	Recovered          bool    `json:"recovered"`
	RecoveryStatus     string  `json:"recovery_status"`
	JournalReplayed    int     `json:"journal_records_replayed"`
	Snapshots          int     `json:"snapshots"`
	LastSnapshotAge    float64 `json:"last_snapshot_age_periods"`
	PersistErrors      int     `json:"persist_errors"`
	BreakerState       string  `json:"breaker_state"`
	Quarantined        int     `json:"quarantined"`

	// Degradation: a degraded mirror stays ready — it serves — but
	// reports which envelope it is serving in and how far the persist
	// axis is from healthy.
	Mode                       string `json:"mode"`
	ConsecutivePersistFailures int    `json:"consecutive_persist_failures"`
}

// Readiness reports whether the mirror should receive traffic and the
// durability state behind that answer.
func (m *Mirror) Readiness() Readiness {
	m.mu.Lock()
	defer m.mu.Unlock()
	age := -1.0
	if m.lastSnapshotAt >= 0 {
		age = m.now - m.lastSnapshotAt
	}
	return Readiness{
		Ready:              m.ready,
		PersistenceEnabled: m.store != nil,
		Recovered:          m.recovered,
		RecoveryStatus:     m.recoveryStatus,
		JournalReplayed:    m.replayed,
		Snapshots:          m.snapshots,
		LastSnapshotAge:    age,
		PersistErrors:      m.persistErrors,
		BreakerState:       m.brk.state.String(),
		Quarantined:        m.quarantined,

		Mode:                       m.machine.Mode().String(),
		ConsecutivePersistFailures: m.machine.ConsecutivePersistFailures(),
	}
}

// estimatesSnapshot returns the configured estimator's current
// per-element estimates — test and diagnostic access to the estimator
// state that persistence must preserve.
func (m *Mirror) estimatesSnapshot() ([]float64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.est.Estimates(m.cfg.PriorLambda)
}
