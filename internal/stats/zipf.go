package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Zipf models the generalized Zipf (zeta) distribution over ranks
// 1..N used by the paper for access probabilities: the probability of
// the element with rank i is proportional to 1/i^theta. Theta = 0 is
// the uniform distribution; the paper sweeps theta in [0, 1.6]
// following the web-access measurements it cites.
//
// The standard library's rand.Zipf requires its skew parameter to be
// strictly greater than 1, so it cannot express the paper's range; this
// implementation supports any theta >= 0.
type Zipf struct {
	n     int
	theta float64
	probs []float64 // probs[i] is the probability of rank i+1
	cdf   []float64 // cumulative distribution for inverse sampling
}

// NewZipf builds a Zipf distribution over n ranks with skew theta.
func NewZipf(n int, theta float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: zipf needs at least one rank, got %d", n)
	}
	if theta < 0 || math.IsNaN(theta) || math.IsInf(theta, 0) {
		return nil, fmt.Errorf("stats: zipf skew must be a finite non-negative number, got %v", theta)
	}
	z := &Zipf{
		n:     n,
		theta: theta,
		probs: make([]float64, n),
		cdf:   make([]float64, n),
	}
	var norm float64
	for i := 0; i < n; i++ {
		w := math.Pow(float64(i+1), -theta)
		z.probs[i] = w
		norm += w
	}
	var cum float64
	for i := 0; i < n; i++ {
		z.probs[i] /= norm
		cum += z.probs[i]
		z.cdf[i] = cum
	}
	z.cdf[n-1] = 1 // guard against accumulated rounding
	return z, nil
}

// N returns the number of ranks.
func (z *Zipf) N() int { return z.n }

// Theta returns the skew parameter.
func (z *Zipf) Theta() float64 { return z.theta }

// Prob returns the probability of rank i (1-based).
func (z *Zipf) Prob(rank int) float64 {
	if rank < 1 || rank > z.n {
		return 0
	}
	return z.probs[rank-1]
}

// Probs returns a copy of the full probability vector indexed by
// rank-1. The vector sums to 1.
func (z *Zipf) Probs() []float64 {
	out := make([]float64, z.n)
	copy(out, z.probs)
	return out
}

// Sample draws a rank in [1, n] by inverting the CDF.
func (z *Zipf) Sample(r *RNG) int {
	u := r.Float64()
	// sort.SearchFloat64s finds the first cdf entry >= u.
	i := sort.SearchFloat64s(z.cdf, u)
	if i >= z.n {
		i = z.n - 1
	}
	return i + 1
}

// ErrEmptyDistribution is returned when a discrete distribution has no
// probability mass.
var ErrEmptyDistribution = errors.New("stats: distribution has no probability mass")

// Normalize scales the vector in place so it sums to 1 and returns it.
// It returns ErrEmptyDistribution if the sum is not positive.
func Normalize(probs []float64) ([]float64, error) {
	var sum float64
	for _, p := range probs {
		if p < 0 || math.IsNaN(p) {
			return nil, fmt.Errorf("stats: probability mass must be non-negative, got %v", p)
		}
		sum += p
	}
	if sum <= 0 {
		return nil, ErrEmptyDistribution
	}
	for i := range probs {
		probs[i] /= sum
	}
	return probs, nil
}
