package stats

import "math/rand"

// RNG is the random source used throughout the repository. It wraps
// math/rand.Rand so callers never touch the global source and every
// stochastic component can be seeded independently.
type RNG struct {
	*rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{Rand: rand.New(rand.NewSource(seed))}
}

// Split derives an independent generator from r. Each call advances r,
// so successive splits yield distinct streams. Splitting lets one
// experiment seed drive several components (update generator, request
// generator, workload builder) without correlated draws.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Int63())
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	return r.Rand.Perm(n)
}
