package stats

import "fmt"

// Histogram is a fixed-width bin histogram over [lo, hi). Values
// outside the range are clamped into the first or last bin so no
// observation is silently dropped.
type Histogram struct {
	lo, hi float64
	width  float64
	counts []int
	total  int
}

// NewHistogram builds a histogram with the given number of bins over
// [lo, hi).
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram needs at least one bin, got %d", bins)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: histogram range must satisfy hi > lo, got [%v, %v)", lo, hi)
	}
	return &Histogram{
		lo:     lo,
		hi:     hi,
		width:  (hi - lo) / float64(bins),
		counts: make([]int, bins),
	}, nil
}

// Observe adds one value.
func (h *Histogram) Observe(x float64) {
	i := int((x - h.lo) / h.width)
	if i < 0 {
		i = 0
	}
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	h.counts[i]++
	h.total++
}

// Count returns the number of observations in bin i.
func (h *Histogram) Count(i int) int { return h.counts[i] }

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.lo + (float64(i)+0.5)*h.width
}

// Fraction returns the fraction of observations in bin i, or 0 when
// the histogram is empty.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[i]) / float64(h.total)
}
