package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewGammaValidation(t *testing.T) {
	bad := [][2]float64{{0, 1}, {-1, 1}, {1, 0}, {1, -2}, {math.Inf(1), 1}}
	for _, c := range bad {
		if _, err := NewGamma(c[0], c[1]); err == nil {
			t.Errorf("NewGamma(%v, %v) succeeded, want error", c[0], c[1])
		}
	}
}

func TestNewGammaMeanStdDev(t *testing.T) {
	g, err := NewGammaMeanStdDev(2.0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Mean()-2.0) > 1e-12 {
		t.Errorf("Mean = %v, want 2", g.Mean())
	}
	if math.Abs(g.StdDev()-1.0) > 1e-12 {
		t.Errorf("StdDev = %v, want 1", g.StdDev())
	}
	// Paper's Table 2: mean 2, stddev 1 -> shape 4, scale 0.5.
	if math.Abs(g.Shape()-4) > 1e-12 || math.Abs(g.Scale()-0.5) > 1e-12 {
		t.Errorf("shape=%v scale=%v, want 4 and 0.5", g.Shape(), g.Scale())
	}
}

func TestGammaSampleMoments(t *testing.T) {
	cases := []struct{ mean, stddev float64 }{
		{2.0, 1.0},  // Table 2
		{2.0, 2.0},  // Table 3 (shape 1)
		{2.0, 3.0},  // shape < 1 path
		{10.0, 1.0}, // large shape
	}
	r := NewRNG(99)
	const n = 200000
	for _, c := range cases {
		g, err := NewGammaMeanStdDev(c.mean, c.stddev)
		if err != nil {
			t.Fatal(err)
		}
		xs := g.SampleN(r, n)
		if m := Mean(xs); math.Abs(m-c.mean) > 0.05*c.mean+0.05 {
			t.Errorf("mean=%v stddev=%v: sample mean %v", c.mean, c.stddev, m)
		}
		if s := StdDev(xs); math.Abs(s-c.stddev) > 0.07*c.stddev+0.05 {
			t.Errorf("mean=%v stddev=%v: sample stddev %v", c.mean, c.stddev, s)
		}
	}
}

func TestGammaSamplePositive(t *testing.T) {
	g, err := NewGammaMeanStdDev(0.5, 1.5) // shape < 1
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(3)
	for i := 0; i < 20000; i++ {
		if x := g.Sample(r); !(x > 0) || math.IsInf(x, 0) || math.IsNaN(x) {
			t.Fatalf("Sample returned %v, want positive finite", x)
		}
	}
}

func TestGammaPropertyPositiveFinite(t *testing.T) {
	r := NewRNG(11)
	f := func(rawMean, rawStd uint16) bool {
		mean := float64(rawMean%1000)/100 + 0.01
		std := float64(rawStd%1000)/100 + 0.01
		g, err := NewGammaMeanStdDev(mean, std)
		if err != nil {
			return false
		}
		x := g.Sample(r)
		if math.IsInf(x, 0) || math.IsNaN(x) || x < 0 {
			return false
		}
		// Extremely small shapes legitimately underflow to 0 (the
		// variate is below float64 range); see Gamma.Sample.
		if g.Shape() >= 1e-2 && x == 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
