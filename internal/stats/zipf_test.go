package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewZipfValidation(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		theta float64
	}{
		{"zero ranks", 0, 1.0},
		{"negative ranks", -5, 1.0},
		{"negative theta", 10, -0.5},
		{"nan theta", 10, math.NaN()},
		{"inf theta", 10, math.Inf(1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewZipf(tc.n, tc.theta); err == nil {
				t.Fatalf("NewZipf(%d, %v) succeeded, want error", tc.n, tc.theta)
			}
		})
	}
}

func TestZipfUniformWhenThetaZero(t *testing.T) {
	z, err := NewZipf(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	for rank := 1; rank <= 8; rank++ {
		if got, want := z.Prob(rank), 1.0/8.0; math.Abs(got-want) > 1e-12 {
			t.Errorf("Prob(%d) = %v, want %v", rank, got, want)
		}
	}
}

func TestZipfProbsSumToOne(t *testing.T) {
	for _, theta := range []float64{0, 0.4, 0.8, 1.0, 1.2, 1.6, 2.5} {
		z, err := NewZipf(1000, theta)
		if err != nil {
			t.Fatal(err)
		}
		if sum := Sum(z.Probs()); math.Abs(sum-1) > 1e-9 {
			t.Errorf("theta=%v: probs sum to %v, want 1", theta, sum)
		}
	}
}

func TestZipfMonotoneDecreasing(t *testing.T) {
	z, err := NewZipf(100, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	for rank := 2; rank <= 100; rank++ {
		if z.Prob(rank) > z.Prob(rank-1) {
			t.Fatalf("Prob(%d)=%v > Prob(%d)=%v; zipf must be non-increasing in rank",
				rank, z.Prob(rank), rank-1, z.Prob(rank-1))
		}
	}
}

func TestZipfKnownRatios(t *testing.T) {
	// For theta = 1, P(rank 1) / P(rank 2) must be exactly 2.
	z, err := NewZipf(50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := z.Prob(1) / z.Prob(2); math.Abs(ratio-2) > 1e-12 {
		t.Errorf("P(1)/P(2) = %v, want 2", ratio)
	}
}

func TestZipfProbOutOfRange(t *testing.T) {
	z, err := NewZipf(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if z.Prob(0) != 0 || z.Prob(11) != 0 || z.Prob(-3) != 0 {
		t.Error("out-of-range ranks must have probability 0")
	}
}

func TestZipfSampleMatchesDistribution(t *testing.T) {
	const n, draws = 20, 200000
	z, err := NewZipf(n, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(7)
	counts := make([]int, n+1)
	for i := 0; i < draws; i++ {
		counts[z.Sample(r)]++
	}
	for rank := 1; rank <= n; rank++ {
		got := float64(counts[rank]) / draws
		want := z.Prob(rank)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("rank %d: empirical %v vs true %v", rank, got, want)
		}
	}
}

func TestZipfSampleAlwaysInRange(t *testing.T) {
	z, err := NewZipf(5, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(42)
	for i := 0; i < 10000; i++ {
		if rank := z.Sample(r); rank < 1 || rank > 5 {
			t.Fatalf("Sample returned %d, want in [1, 5]", rank)
		}
	}
}

func TestZipfPropertyNormalized(t *testing.T) {
	// Property: for any n in [1, 500] and theta in [0, 2], the
	// probability vector sums to 1 and every entry is positive.
	f := func(rawN uint16, rawTheta uint16) bool {
		n := int(rawN%500) + 1
		theta := float64(rawTheta%2000) / 1000.0
		z, err := NewZipf(n, theta)
		if err != nil {
			return false
		}
		probs := z.Probs()
		sum := 0.0
		for _, p := range probs {
			if p <= 0 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	got, err := Normalize([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-0.25) > 1e-12 || math.Abs(got[1]-0.75) > 1e-12 {
		t.Errorf("Normalize([1 3]) = %v, want [0.25 0.75]", got)
	}
	if _, err := Normalize([]float64{0, 0}); err == nil {
		t.Error("Normalize of zero mass must fail")
	}
	if _, err := Normalize([]float64{1, -1}); err == nil {
		t.Error("Normalize with negative mass must fail")
	}
}
