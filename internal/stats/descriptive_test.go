package stats

import (
	"math"
	"testing"
)

func TestDescriptiveBasics(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Sum(xs); got != 40 {
		t.Errorf("Sum = %v, want 40", got)
	}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Min(xs); got != 2 {
		t.Errorf("Min = %v, want 2", got)
	}
	if got := Max(xs); got != 9 {
		t.Errorf("Max = %v, want 9", got)
	}
}

func TestDescriptiveEmpty(t *testing.T) {
	if Mean(nil) != 0 || Sum(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty-slice moments must be 0")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max must be +/-Inf")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty Quantile must be NaN")
	}
}

func TestWeightedMean(t *testing.T) {
	xs := []float64{1, 2, 3}
	ws := []float64{1, 0, 1}
	if got := WeightedMean(xs, ws); got != 2 {
		t.Errorf("WeightedMean = %v, want 2", got)
	}
	if got := WeightedMean(xs, []float64{0, 0, 0}); got != 0 {
		t.Errorf("zero-weight WeightedMean = %v, want 0", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Errorf("q1 = %v, want 4", got)
	}
	if got := Quantile(xs, 0.5); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("median = %v, want 2.5", got)
	}
	// Quantile must not mutate its input.
	if xs[0] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 9.9, 10, 42} {
		h.Observe(x)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
	if h.Count(0) != 3 { // -1 (clamped), 0, 1.9
		t.Errorf("bin 0 count = %d, want 3", h.Count(0))
	}
	if h.Count(4) != 3 { // 9.9, 10 (clamped), 42 (clamped)
		t.Errorf("bin 4 count = %d, want 3", h.Count(4))
	}
	if got := h.BinCenter(0); got != 1 {
		t.Errorf("BinCenter(0) = %v, want 1", got)
	}
	if got := h.Fraction(0); math.Abs(got-3.0/7.0) > 1e-12 {
		t.Errorf("Fraction(0) = %v", got)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero bins must fail")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("empty range must fail")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(1234), NewRNG(1234)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give identical streams")
		}
	}
	// Split streams must diverge from the parent.
	c := NewRNG(1234)
	d := c.Split()
	same := true
	for i := 0; i < 16; i++ {
		if c.Float64() != d.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Error("split stream identical to parent stream")
	}
}
