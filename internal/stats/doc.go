// Package stats provides the statistical substrate for the freshening
// system: seeded random number generation, the distributions used by the
// paper's workloads (Zipf access skew, Gamma change rates, Pareto object
// sizes, Poisson update processes), discrete sampling via Vose's alias
// method, and small descriptive-statistics helpers.
//
// Everything is built on the standard library only and is deterministic
// given an explicit seed, so every experiment in the repository can be
// reproduced bit-for-bit.
package stats
