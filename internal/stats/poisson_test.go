package stats

import (
	"math"
	"testing"
)

func TestPoissonSampleMoments(t *testing.T) {
	r := NewRNG(17)
	const n = 100000
	for _, mean := range []float64{0.5, 2, 8, 29.5, 30, 50, 200} {
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			x := float64(PoissonSample(r, mean))
			sum += x
			sumSq += x * x
		}
		m := sum / n
		v := sumSq/n - m*m
		if math.Abs(m-mean) > 0.03*mean+0.03 {
			t.Errorf("mean %v: sample mean %v", mean, m)
		}
		if math.Abs(v-mean) > 0.08*mean+0.08 {
			t.Errorf("mean %v: sample variance %v, want about %v", mean, v, mean)
		}
	}
}

func TestPoissonSampleEdgeCases(t *testing.T) {
	r := NewRNG(1)
	if got := PoissonSample(r, 0); got != 0 {
		t.Errorf("PoissonSample(0) = %d, want 0", got)
	}
	if got := PoissonSample(r, -3); got != 0 {
		t.Errorf("PoissonSample(-3) = %d, want 0", got)
	}
}

func TestPoissonProcess(t *testing.T) {
	r := NewRNG(23)
	times, err := PoissonProcess(r, 4.0, 1000.0)
	if err != nil {
		t.Fatal(err)
	}
	// Expected count 4000; allow 5 sigma (sigma ~ 63).
	if n := float64(len(times)); math.Abs(n-4000) > 320 {
		t.Errorf("got %v events, want about 4000", n)
	}
	for i, tm := range times {
		if tm < 0 || tm >= 1000 {
			t.Fatalf("event %d at %v outside [0, 1000)", i, tm)
		}
		if i > 0 && tm < times[i-1] {
			t.Fatalf("events out of order at %d", i)
		}
	}
}

func TestPoissonProcessEdges(t *testing.T) {
	r := NewRNG(2)
	if ts, err := PoissonProcess(r, 0, 100); err != nil || len(ts) != 0 {
		t.Errorf("rate 0: got %v, %v", ts, err)
	}
	if ts, err := PoissonProcess(r, 5, 0); err != nil || len(ts) != 0 {
		t.Errorf("horizon 0: got %v, %v", ts, err)
	}
	if _, err := PoissonProcess(r, -1, 100); err == nil {
		t.Error("negative rate must fail")
	}
	if _, err := PoissonProcess(r, 1, -100); err == nil {
		t.Error("negative horizon must fail")
	}
}
