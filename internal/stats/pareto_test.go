package stats

import (
	"math"
	"testing"
)

func TestNewParetoValidation(t *testing.T) {
	if _, err := NewPareto(0, 1); err == nil {
		t.Error("shape 0 must fail")
	}
	if _, err := NewPareto(1.1, 0); err == nil {
		t.Error("scale 0 must fail")
	}
	if _, err := NewParetoMean(1.0, 1.0); err == nil {
		t.Error("mean undefined for shape <= 1, must fail")
	}
	if _, err := NewParetoMean(1.1, -1); err == nil {
		t.Error("negative mean must fail")
	}
}

func TestParetoMeanParameterization(t *testing.T) {
	// Paper footnote 4: shape 1.1, mean 1 -> scale (a-1)/a = 1/11.
	p, err := NewParetoMean(1.1, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Scale()-1.0/11.0) > 1e-12 {
		t.Errorf("Scale = %v, want 1/11", p.Scale())
	}
	if math.Abs(p.Mean()-1.0) > 1e-12 {
		t.Errorf("Mean = %v, want 1", p.Mean())
	}
}

func TestParetoSampleBounds(t *testing.T) {
	p, err := NewPareto(1.1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(21)
	for i := 0; i < 50000; i++ {
		if x := p.Sample(r); x < 0.5 {
			t.Fatalf("Sample returned %v below scale 0.5", x)
		}
	}
}

func TestParetoSampleMedian(t *testing.T) {
	// The Pareto median is m * 2^(1/a); sample medians are far more
	// stable than sample means for shape 1.1's heavy tail.
	p, err := NewParetoMean(1.1, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(5)
	xs := p.SampleN(r, 100000)
	wantMedian := p.Scale() * math.Pow(2, 1/p.Shape())
	if got := Quantile(xs, 0.5); math.Abs(got-wantMedian) > 0.02*wantMedian {
		t.Errorf("sample median %v, want about %v", got, wantMedian)
	}
}

func TestParetoInfiniteMeanReported(t *testing.T) {
	p, err := NewPareto(0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(p.Mean(), 1) {
		t.Errorf("Mean for shape 0.9 = %v, want +Inf", p.Mean())
	}
}
