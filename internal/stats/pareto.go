package stats

import (
	"fmt"
	"math"
)

// Pareto is a Pareto (type I) distribution with shape a and scale m:
// P(X > x) = (m/x)^a for x >= m. The paper models web object sizes
// with a Pareto of shape 1.1 normalized to mean 1 (its footnote 4:
// the mean is a*m/(a-1) for a > 1).
type Pareto struct {
	shape float64
	scale float64
}

// NewPareto builds a Pareto distribution from shape and scale.
func NewPareto(shape, scale float64) (*Pareto, error) {
	if !(shape > 0) || math.IsInf(shape, 0) {
		return nil, fmt.Errorf("stats: pareto shape must be positive and finite, got %v", shape)
	}
	if !(scale > 0) || math.IsInf(scale, 0) {
		return nil, fmt.Errorf("stats: pareto scale must be positive and finite, got %v", scale)
	}
	return &Pareto{shape: shape, scale: scale}, nil
}

// NewParetoMean builds a Pareto with the given shape whose mean equals
// mean. The shape must exceed 1 for the mean to exist.
func NewParetoMean(shape, mean float64) (*Pareto, error) {
	if shape <= 1 {
		return nil, fmt.Errorf("stats: pareto mean undefined for shape %v <= 1", shape)
	}
	if !(mean > 0) {
		return nil, fmt.Errorf("stats: pareto mean must be positive, got %v", mean)
	}
	return NewPareto(shape, mean*(shape-1)/shape)
}

// Shape returns the shape parameter a.
func (p *Pareto) Shape() float64 { return p.shape }

// Scale returns the scale parameter m (the minimum value).
func (p *Pareto) Scale() float64 { return p.scale }

// Mean returns a*m/(a-1), or +Inf when the shape does not exceed 1.
func (p *Pareto) Mean() float64 {
	if p.shape <= 1 {
		return math.Inf(1)
	}
	return p.shape * p.scale / (p.shape - 1)
}

// Sample draws one Pareto variate by inverse-CDF: m / U^(1/a).
func (p *Pareto) Sample(r *RNG) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return p.scale / math.Pow(u, 1/p.shape)
}

// SampleN draws n variates.
func (p *Pareto) SampleN(r *RNG, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = p.Sample(r)
	}
	return out
}
