package stats

import (
	"fmt"
	"math"
)

// PoissonSample draws one Poisson(mean) variate. For small means it
// uses Knuth's product method; for large means it uses the PA
// acceptance/complement-free normal refinement (Atkinson's PTRS-style
// rejection), which stays exact and O(1).
func PoissonSample(r *RNG, mean float64) int {
	switch {
	case mean <= 0:
		return 0
	case mean < 30:
		return poissonKnuth(r, mean)
	default:
		return poissonRejection(r, mean)
	}
}

func poissonKnuth(r *RNG, mean float64) int {
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// poissonRejection implements the transformed-rejection method of
// Hörmann (PTRS, 1993) for mean >= 10. It needs only log-gamma from
// the standard library.
func poissonRejection(r *RNG, mean float64) int {
	b := 0.931 + 2.53*math.Sqrt(mean)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	for {
		u := r.Float64() - 0.5
		v := r.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + mean + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*math.Log(mean)-mean-lg {
			return int(k)
		}
	}
}

// PoissonProcess returns the ordered event times of a homogeneous
// Poisson process with the given rate over [0, horizon). The expected
// number of events is rate*horizon.
func PoissonProcess(r *RNG, rate, horizon float64) ([]float64, error) {
	if rate < 0 {
		return nil, fmt.Errorf("stats: poisson process rate must be non-negative, got %v", rate)
	}
	if horizon < 0 {
		return nil, fmt.Errorf("stats: poisson process horizon must be non-negative, got %v", horizon)
	}
	if rate == 0 || horizon == 0 {
		return nil, nil
	}
	times := make([]float64, 0, int(rate*horizon)+1)
	t := 0.0
	for {
		t += r.ExpFloat64() / rate
		if t >= horizon {
			return times, nil
		}
		times = append(times, t)
	}
}
