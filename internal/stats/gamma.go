package stats

import (
	"fmt"
	"math"
)

// Gamma is a gamma distribution parameterized by shape k and scale
// theta (mean = k*theta, variance = k*theta^2). The paper draws
// per-element change frequencies from a gamma with a given mean and
// standard deviation, so NewGammaMeanStdDev is the constructor the
// workload generator uses.
type Gamma struct {
	shape float64
	scale float64
}

// NewGamma builds a gamma distribution from shape and scale.
func NewGamma(shape, scale float64) (*Gamma, error) {
	if !(shape > 0) || math.IsInf(shape, 0) {
		return nil, fmt.Errorf("stats: gamma shape must be positive and finite, got %v", shape)
	}
	if !(scale > 0) || math.IsInf(scale, 0) {
		return nil, fmt.Errorf("stats: gamma scale must be positive and finite, got %v", scale)
	}
	return &Gamma{shape: shape, scale: scale}, nil
}

// NewGammaMeanStdDev builds a gamma distribution with the given mean
// and standard deviation, the parameterization used in the paper's
// experiment tables (mean updates per period, UpdateStdDev).
func NewGammaMeanStdDev(mean, stddev float64) (*Gamma, error) {
	if !(mean > 0) || !(stddev > 0) {
		return nil, fmt.Errorf("stats: gamma mean and stddev must be positive, got mean=%v stddev=%v", mean, stddev)
	}
	shape := (mean / stddev) * (mean / stddev)
	scale := stddev * stddev / mean
	return NewGamma(shape, scale)
}

// Shape returns the shape parameter k.
func (g *Gamma) Shape() float64 { return g.shape }

// Scale returns the scale parameter theta.
func (g *Gamma) Scale() float64 { return g.scale }

// Mean returns k*theta.
func (g *Gamma) Mean() float64 { return g.shape * g.scale }

// StdDev returns sqrt(k)*theta.
func (g *Gamma) StdDev() float64 { return math.Sqrt(g.shape) * g.scale }

// Sample draws one gamma variate using the Marsaglia–Tsang (2000)
// squeeze method for shape >= 1, boosted for shape < 1 via the
// standard U^(1/k) transformation. For extremely small shapes
// (below ~10⁻³) the true variate can fall beneath the smallest
// representable float64 and the sample underflows to 0; callers that
// treat a zero rate as "never changes" (as this repository does) get
// the semantically right behaviour.
func (g *Gamma) Sample(r *RNG) float64 {
	k := g.shape
	boost := 1.0
	if k < 1 {
		// Gamma(k) = Gamma(k+1) * U^(1/k)
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		boost = math.Pow(u, 1/k)
		k++
	}
	d := k - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * boost * g.scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * boost * g.scale
		}
	}
}

// SampleN draws n variates.
func (g *Gamma) SampleN(r *RNG, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = g.Sample(r)
	}
	return out
}
