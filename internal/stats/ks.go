package stats

import (
	"fmt"
	"math"
	"sort"
)

// KolmogorovSmirnov returns the one-sample KS statistic
// D = sup |F̂(x) − F(x)| between the samples' empirical CDF and the
// hypothesized CDF. Compare against KSCriticalValue to test fit.
func KolmogorovSmirnov(samples []float64, cdf func(float64) float64) (float64, error) {
	n := len(samples)
	if n == 0 {
		return 0, fmt.Errorf("stats: KS test needs samples")
	}
	sorted := make([]float64, n)
	copy(sorted, samples)
	sort.Float64s(sorted)
	var d float64
	for i, x := range sorted {
		f := cdf(x)
		if f < 0 || f > 1 || math.IsNaN(f) {
			return 0, fmt.Errorf("stats: hypothesized CDF returned %v at %v", f, x)
		}
		lo := f - float64(i)/float64(n)
		hi := float64(i+1)/float64(n) - f
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	return d, nil
}

// KSCriticalValue returns the asymptotic critical value of the KS
// statistic at significance level alpha ∈ {0.10, 0.05, 0.01}:
// c(α)/√n with the standard coefficients.
func KSCriticalValue(n int, alpha float64) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("stats: KS critical value needs n > 0")
	}
	var c float64
	switch alpha {
	case 0.10:
		c = 1.22
	case 0.05:
		c = 1.36
	case 0.01:
		c = 1.63
	default:
		return 0, fmt.Errorf("stats: unsupported KS significance level %v", alpha)
	}
	return c / math.Sqrt(float64(n)), nil
}

// RegularizedGammaP computes P(a, x), the regularized lower incomplete
// gamma function, by series expansion for x < a+1 and by a Lentz
// continued fraction for the complement otherwise (the standard
// split). It backs GammaCDF; the standard library offers no incomplete
// gamma.
func RegularizedGammaP(a, x float64) float64 {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	lg, _ := math.Lgamma(a)
	if x < a+1 {
		// Series: P(a,x) = e^{-x} x^a / Γ(a) · Σ x^n / (a(a+1)…(a+n)).
		ap := a
		sum := 1 / a
		del := sum
		for i := 0; i < 1000; i++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*1e-16 {
				break
			}
		}
		return sum * math.Exp(-x+a*math.Log(x)-lg)
	}
	// Continued fraction for Q(a,x), modified Lentz.
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 1000; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-16 {
			break
		}
	}
	q := math.Exp(-x+a*math.Log(x)-lg) * h
	return 1 - q
}

// CDF returns the gamma cumulative distribution function at x.
func (g *Gamma) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return RegularizedGammaP(g.shape, x/g.scale)
}

// CDF returns the Pareto cumulative distribution function at x.
func (p *Pareto) CDF(x float64) float64 {
	if x <= p.scale {
		return 0
	}
	return 1 - math.Pow(p.scale/x, p.shape)
}
