package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewAliasValidation(t *testing.T) {
	if _, err := NewAlias(nil); err == nil {
		t.Error("empty weights must fail")
	}
	if _, err := NewAlias([]float64{0, 0}); err == nil {
		t.Error("zero-mass weights must fail")
	}
	if _, err := NewAlias([]float64{1, -1}); err == nil {
		t.Error("negative weight must fail")
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	weights := []float64{1, 0, 3, 6}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(13)
	const draws = 300000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[a.Sample(r)]++
	}
	total := Sum(weights)
	for i, w := range weights {
		got := float64(counts[i]) / draws
		want := w / total
		if math.Abs(got-want) > 0.01 {
			t.Errorf("outcome %d: empirical %v, want %v", i, got, want)
		}
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight outcome drawn %d times", counts[1])
	}
}

func TestAliasSingleOutcome(t *testing.T) {
	a, err := NewAlias([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(1)
	for i := 0; i < 100; i++ {
		if a.Sample(r) != 0 {
			t.Fatal("single-outcome alias must always return 0")
		}
	}
}

func TestAliasPropertyInRange(t *testing.T) {
	r := NewRNG(31)
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		weights := make([]float64, len(raw))
		var sum float64
		for i, v := range raw {
			weights[i] = float64(v)
			sum += weights[i]
		}
		a, err := NewAlias(weights)
		if sum == 0 {
			return err != nil
		}
		if err != nil {
			return false
		}
		for i := 0; i < 32; i++ {
			k := a.Sample(r)
			if k < 0 || k >= len(weights) || weights[k] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
