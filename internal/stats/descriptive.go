package stats

import (
	"math"
	"sort"
)

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than
// two values.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// WeightedMean returns sum(w[i]*x[i]) / sum(w[i]), or 0 when the
// weights sum to zero. The slices must have equal length.
func WeightedMean(xs, ws []float64) float64 {
	var num, den float64
	for i, x := range xs {
		num += ws[i] * x
		den += ws[i]
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It copies and sorts xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
