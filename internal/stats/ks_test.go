package stats

import (
	"math"
	"testing"
)

func TestRegularizedGammaPKnownValues(t *testing.T) {
	cases := []struct{ a, x, want float64 }{
		// P(1, x) = 1 - e^{-x}.
		{1, 0.5, 1 - math.Exp(-0.5)},
		{1, 2, 1 - math.Exp(-2)},
		// P(a, a) approaches 1/2 for large a; exact value at a=10 is
		// about 0.5421 (Abramowitz & Stegun).
		{10, 10, 0.5420703}, // uses the continued-fraction branch
		// Small x, series branch: P(2, 0.1) = 1 - e^{-0.1}(1 + 0.1).
		{2, 0.1, 1 - math.Exp(-0.1)*1.1},
		// P(0.5, x) = erf(sqrt(x)).
		{0.5, 1.0, math.Erf(1)},
	}
	for _, c := range cases {
		got := RegularizedGammaP(c.a, c.x)
		if math.Abs(got-c.want) > 1e-6 {
			t.Errorf("P(%v, %v) = %v, want %v", c.a, c.x, got, c.want)
		}
	}
	if got := RegularizedGammaP(1, 0); got != 0 {
		t.Errorf("P(1, 0) = %v, want 0", got)
	}
	if !math.IsNaN(RegularizedGammaP(-1, 1)) || !math.IsNaN(RegularizedGammaP(1, -1)) {
		t.Error("invalid arguments must return NaN")
	}
}

func TestRegularizedGammaPMonotoneAndBounded(t *testing.T) {
	for _, a := range []float64{0.3, 1, 4, 25} {
		prev := -1.0
		for x := 0.0; x < 4*a+10; x += 0.25 {
			p := RegularizedGammaP(a, x)
			if p < prev-1e-12 || p < 0 || p > 1 {
				t.Fatalf("P(%v, %v) = %v not monotone in [0,1] (prev %v)", a, x, p, prev)
			}
			prev = p
		}
		if prev < 0.999 {
			t.Errorf("P(%v, large) = %v, want near 1", a, prev)
		}
	}
}

func TestGammaSamplesPassKS(t *testing.T) {
	r := NewRNG(77)
	for _, c := range []struct{ mean, stddev float64 }{{2, 1}, {2, 2}, {5, 0.5}} {
		g, err := NewGammaMeanStdDev(c.mean, c.stddev)
		if err != nil {
			t.Fatal(err)
		}
		samples := g.SampleN(r, 5000)
		d, err := KolmogorovSmirnov(samples, g.CDF)
		if err != nil {
			t.Fatal(err)
		}
		crit, err := KSCriticalValue(len(samples), 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if d > crit {
			t.Errorf("gamma(mean=%v, stddev=%v): KS D=%v exceeds critical %v", c.mean, c.stddev, d, crit)
		}
	}
}

func TestParetoSamplesPassKS(t *testing.T) {
	r := NewRNG(78)
	p, err := NewParetoMean(1.1, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	samples := p.SampleN(r, 5000)
	d, err := KolmogorovSmirnov(samples, p.CDF)
	if err != nil {
		t.Fatal(err)
	}
	crit, err := KSCriticalValue(len(samples), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if d > crit {
		t.Errorf("pareto: KS D=%v exceeds critical %v", d, crit)
	}
}

func TestKSRejectsWrongDistribution(t *testing.T) {
	// Exponential samples against a uniform CDF must fail decisively.
	r := NewRNG(79)
	samples := make([]float64, 2000)
	for i := range samples {
		samples[i] = r.ExpFloat64()
	}
	uniformCDF := func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 5 {
			return 1
		}
		return x / 5
	}
	d, err := KolmogorovSmirnov(samples, uniformCDF)
	if err != nil {
		t.Fatal(err)
	}
	crit, err := KSCriticalValue(len(samples), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if d < 3*crit {
		t.Errorf("KS failed to reject a wrong distribution: D=%v crit=%v", d, crit)
	}
}

func TestKSValidation(t *testing.T) {
	if _, err := KolmogorovSmirnov(nil, func(float64) float64 { return 0 }); err == nil {
		t.Error("empty samples must fail")
	}
	if _, err := KolmogorovSmirnov([]float64{1}, func(float64) float64 { return 2 }); err == nil {
		t.Error("invalid CDF must fail")
	}
	if _, err := KSCriticalValue(0, 0.05); err == nil {
		t.Error("n=0 must fail")
	}
	if _, err := KSCriticalValue(10, 0.5); err == nil {
		t.Error("unsupported alpha must fail")
	}
}
