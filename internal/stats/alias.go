package stats

import "fmt"

// Alias is a Vose alias-method sampler over a discrete distribution.
// Sampling is O(1) per draw, which matters for the simulator's request
// generator when the mirror holds hundreds of thousands of elements.
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds an alias table from the (not necessarily normalized)
// non-negative weight vector.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, ErrEmptyDistribution
	}
	var sum float64
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("stats: alias weight %d is negative (%v)", i, w)
		}
		sum += w
	}
	if sum <= 0 {
		return nil, ErrEmptyDistribution
	}
	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int, n),
	}
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w / sum * float64(n)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		// Can only happen through floating-point drift; treat as full.
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a, nil
}

// Sample draws one index distributed according to the weights.
func (a *Alias) Sample(r *RNG) int {
	i := r.Intn(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// N returns the number of outcomes.
func (a *Alias) N() int { return len(a.prob) }
