package freshen

import (
	"fmt"

	"freshen/internal/core"
	"freshen/internal/estimate"
	"freshen/internal/freshness"
	"freshen/internal/partition"
	"freshen/internal/profile"
	"freshen/internal/schedule"
	"freshen/internal/selection"
	"freshen/internal/sim"
	"freshen/internal/solver"
	"freshen/internal/workload"
)

// Element is one local copy in the mirror: its change rate at the
// source (Lambda, updates/period), its share of the aggregate user
// profile (AccessProb) and its transfer cost (Size, bandwidth units).
type Element = freshness.Element

// Policy is a synchronization-order policy (freshness closed form).
type Policy = freshness.Policy

// FixedOrder is the paper's synchronization policy: refreshes at exact
// intervals.
type FixedOrder = freshness.FixedOrder

// PoissonOrder refreshes at exponentially distributed intervals.
type PoissonOrder = freshness.PoissonOrder

// PlanConfig parameterizes planning. See DefaultHeuristics for the
// paper's recommended large-mirror settings.
type PlanConfig = core.Config

// Plan is a computed refresh schedule with its quality metrics.
type Plan = core.Plan

// Strategy selects how a plan is computed.
type Strategy = core.Strategy

// Strategies.
const (
	// StrategyExact solves the optimization exactly (water-filling).
	StrategyExact = core.StrategyExact
	// StrategyPartitioned runs the paper's partitioning heuristic.
	StrategyPartitioned = core.StrategyPartitioned
	// StrategyClustered adds k-means refinement to the partitioning.
	StrategyClustered = core.StrategyClustered
)

// PartitionKey is a partitioning sort criterion.
type PartitionKey = partition.Key

// Partitioning criteria.
const (
	// KeyP sorts by access probability.
	KeyP = partition.KeyP
	// KeyLambda sorts by change frequency.
	KeyLambda = partition.KeyLambda
	// KeyPOverLambda sorts by their ratio.
	KeyPOverLambda = partition.KeyPOverLambda
	// KeyPF sorts by perceived freshness at a reference frequency —
	// the paper's best performer.
	KeyPF = partition.KeyPF
	// KeyPFOverSize is the size-aware PF criterion.
	KeyPFOverSize = partition.KeyPFOverSize
	// KeySize sorts by object size.
	KeySize = partition.KeySize
)

// Allocation hands partition bandwidth down to member elements.
type Allocation = partition.Allocation

// Allocations.
const (
	// FFA gives every member the representative's refresh frequency.
	FFA = partition.FFA
	// FBA gives every member equal bandwidth — the paper's winner for
	// variable-size objects.
	FBA = partition.FBA
)

// SyncEvent is one scheduled refresh operation.
type SyncEvent = schedule.SyncEvent

// User is one client profile for aggregation.
type User = profile.User

// AdaptivePlanner re-plans automatically when the observed access
// profile drifts.
type AdaptivePlanner = core.AdaptivePlanner

// SimConfig configures a simulation run.
type SimConfig = sim.Config

// SimResult reports a simulation run.
type SimResult = sim.Result

// WorkloadSpec describes a synthetic mirror (the paper's experiment
// vocabulary: gamma change rates, Zipf access skew, optional Pareto
// sizes and alignments).
type WorkloadSpec = workload.Spec

// Alignment relates per-element attribute orderings in a workload.
type Alignment = workload.Alignment

// Alignments.
const (
	// Aligned: the hottest element is also the most volatile/largest.
	Aligned = workload.Aligned
	// Reverse: the orderings oppose.
	Reverse = workload.Reverse
	// Shuffled: no relationship.
	Shuffled = workload.Shuffled
)

// SizeDist selects a workload's object-size distribution.
type SizeDist = workload.SizeDist

// Size distributions.
const (
	// SizeUniform gives every object size 1.
	SizeUniform = workload.SizeUniform
	// SizePareto draws sizes from a Pareto distribution.
	SizePareto = workload.SizePareto
)

// TableTwoWorkload returns the paper's Table 2 experiment setup.
func TableTwoWorkload() WorkloadSpec { return workload.TableTwo() }

// TableThreeWorkload returns the paper's Table 3 big-case setup.
func TableThreeWorkload() WorkloadSpec { return workload.TableThree() }

// Poll is one change-detection observation for rate estimation.
type Poll = estimate.Poll

// MakePlan computes a refresh plan for the mirror.
func MakePlan(elems []Element, cfg PlanConfig) (Plan, error) {
	return core.MakePlan(elems, cfg)
}

// DefaultHeuristics returns the paper's recommended configuration for
// large mirrors: PF-partitioning into k partitions, FBA allocation and
// 10 k-means refinement iterations.
func DefaultHeuristics(bandwidth float64, k int) PlanConfig {
	return core.DefaultHeuristics(bandwidth, k)
}

// NewAdaptivePlanner plans once and re-plans whenever the observed
// access profile's total-variation drift exceeds threshold (seen over
// at least minAccesses accesses).
func NewAdaptivePlanner(elems []Element, cfg PlanConfig, threshold float64, minAccesses int) (*AdaptivePlanner, error) {
	return core.NewAdaptivePlanner(elems, cfg, threshold, minAccesses)
}

// AggregateProfiles combines user profiles into the master profile for
// a mirror of n elements, honoring per-user weights.
func AggregateProfiles(n int, users []User) ([]float64, error) {
	return profile.Aggregate(n, users)
}

// ProfileFromAccessLog learns the master profile from an access log
// (element indices), with Laplace smoothing.
func ProfileFromAccessLog(n int, accesses []int, smoothing float64) ([]float64, error) {
	return profile.FromAccessLog(n, accesses, smoothing)
}

// ApplyProfile overwrites the elements' access probabilities with the
// given distribution.
func ApplyProfile(elems []Element, probs []float64) error {
	if len(elems) != len(probs) {
		return fmt.Errorf("freshen: %d probabilities for %d elements", len(probs), len(elems))
	}
	for i := range elems {
		if probs[i] < 0 {
			return fmt.Errorf("freshen: negative access probability %v for element %d", probs[i], i)
		}
		elems[i].AccessProb = probs[i]
	}
	return nil
}

// PerceivedFreshness scores a frequency vector: Σ pᵢ·F(fᵢ, λᵢ) under
// the policy (nil means Fixed-Order).
func PerceivedFreshness(pol Policy, elems []Element, freqs []float64) (float64, error) {
	if pol == nil {
		pol = FixedOrder{}
	}
	return freshness.Perceived(pol, elems, freqs)
}

// AverageFreshness scores a frequency vector on the unweighted mean
// freshness — the objective of Cho & Garcia-Molina's GF baseline.
func AverageFreshness(pol Policy, elems []Element, freqs []float64) (float64, error) {
	if pol == nil {
		pol = FixedOrder{}
	}
	return freshness.Average(pol, elems, freqs)
}

// SolveGF computes the GF (average-freshness) schedule for comparison;
// its Perceived field is scored under the elements' true profile.
func SolveGF(elems []Element, bandwidth float64) (Plan, error) {
	sol, err := solver.SolveGF(solver.Problem{Elements: elems, Bandwidth: bandwidth})
	if err != nil {
		return Plan{}, err
	}
	avg, err := freshness.Average(FixedOrder{}, elems, sol.Freqs)
	if err != nil {
		return Plan{}, err
	}
	return Plan{
		Freqs:         sol.Freqs,
		Perceived:     sol.Perceived,
		AvgFreshness:  avg,
		BandwidthUsed: sol.BandwidthUsed,
		Strategy:      StrategyExact,
		NumPartitions: len(elems),
	}, nil
}

// Simulate runs the discrete-event simulator (paper Figure 4 model).
func Simulate(cfg SimConfig) (SimResult, error) {
	return sim.Run(cfg)
}

// MinimizeAge computes the age-optimal schedule: minimize the
// profile-weighted time-averaged age Σ pᵢ·Ā(fᵢ, λᵢ) under the same
// bandwidth constraint. Unlike the freshness optimum it never starves
// a changing element, trading a little perceived freshness for bounded
// staleness everywhere (Fixed-Order policy only).
func MinimizeAge(elems []Element, bandwidth float64) (Plan, error) {
	sol, err := solver.MinimizeAge(solver.Problem{Elements: elems, Bandwidth: bandwidth})
	if err != nil {
		return Plan{}, err
	}
	avg, err := freshness.Average(FixedOrder{}, elems, sol.Freqs)
	if err != nil {
		return Plan{}, err
	}
	return Plan{
		Freqs:         sol.Freqs,
		Perceived:     sol.Perceived,
		AvgFreshness:  avg,
		BandwidthUsed: sol.BandwidthUsed,
		Strategy:      StrategyExact,
		NumPartitions: len(elems),
	}, nil
}

// PerceivedAge scores a frequency vector on the profile-weighted
// time-averaged age (periods); +Inf when an accessed, changing element
// is never refreshed.
func PerceivedAge(elems []Element, freqs []float64) (float64, error) {
	return freshness.PerceivedAge(elems, freqs)
}

// BandwidthForTarget returns the smallest refresh budget whose optimal
// schedule reaches the target perceived freshness — the capacity-
// planning inverse of MakePlan. pol nil means Fixed-Order.
func BandwidthForTarget(elems []Element, target float64, pol Policy) (float64, error) {
	return solver.BandwidthForTarget(elems, target, pol)
}

// BlendPlan maximizes perceived freshness minus ageWeight times
// perceived age: a single knob between the paper's objective
// (ageWeight 0, may starve hopeless elements) and bounded staleness
// everywhere (large ageWeight). Fixed-Order policy only.
func BlendPlan(elems []Element, bandwidth, ageWeight float64) (Plan, error) {
	sol, err := solver.Blend(solver.Problem{Elements: elems, Bandwidth: bandwidth}, ageWeight)
	if err != nil {
		return Plan{}, err
	}
	avg, err := freshness.Average(FixedOrder{}, elems, sol.Freqs)
	if err != nil {
		return Plan{}, err
	}
	return Plan{
		Freqs:         sol.Freqs,
		Perceived:     sol.Perceived,
		AvgFreshness:  avg,
		BandwidthUsed: sol.BandwidthUsed,
		Strategy:      StrategyExact,
		NumPartitions: len(elems),
	}, nil
}

// GenerateWorkload builds a synthetic mirror from a spec.
func GenerateWorkload(spec WorkloadSpec) ([]Element, error) {
	return workload.Generate(spec)
}

// EstimateChangeRate recovers a Poisson change rate from a poll
// history by maximum likelihood.
func EstimateChangeRate(history []Poll) (float64, error) {
	return estimate.MLE(history)
}

// SelectionProblem is the joint host-and-freshen instance for mirrors
// smaller than the database (the paper's future-work extension).
type SelectionProblem = selection.Problem

// SelectionResult is a hosting decision plus its refresh schedule.
type SelectionResult = selection.Result

// SelectMirror chooses which candidates a capacity-limited mirror
// should host — greedily, by perceived-freshness value per unit of
// storage — and solves the refresh schedule for the chosen set.
func SelectMirror(p SelectionProblem) (SelectionResult, error) {
	return selection.Greedy(p)
}
