// Benchmarks regenerating every table and figure of the paper's
// evaluation (at benchmark-friendly scales; run `freshenctl experiment
// all` for the full-scale tables recorded in EXPERIMENTS.md), plus
// micro-benchmarks of the planning substrate.
//
// Run with: go test -bench=. -benchmem
package freshen_test

import (
	"testing"

	"freshen"
	"freshen/internal/experiment"
	"freshen/internal/workload"
)

// benchOpts keeps the per-iteration cost of the figure benchmarks
// moderate while exercising the full pipeline of each experiment.
var benchOpts = experiment.Options{Seed: 1, Quick: true}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunTable1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.RunFigure1()
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunFigure2(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	for _, align := range []workload.Alignment{workload.Shuffled, workload.Aligned, workload.Reverse} {
		b.Run(align.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiment.RunFigure3(align, benchOpts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunFigure5(workload.Shuffled, benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunFigure6(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunFigure7(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunFigure8(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunFigure9(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunFigure10(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunFigure11(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunPolicyAblation(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSolver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunSolverAblation(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationEstimate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunEstimateAblation(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunSelection(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionHierarchical(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunHierarchical(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionAge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunAge(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionPush(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunPush(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunSensitivity(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionQuantize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunQuantize(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimValidate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunSimValidate(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks ---

func benchWorkload(b *testing.B, n int) []freshen.Element {
	b.Helper()
	elems, err := freshen.GenerateWorkload(freshen.WorkloadSpec{
		NumObjects:       n,
		UpdatesPerPeriod: 2 * float64(n),
		SyncsPerPeriod:   float64(n) / 2,
		Theta:            1.0,
		UpdateStdDev:     1.0,
		Seed:             1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return elems
}

func BenchmarkPlanExact(b *testing.B) {
	for _, n := range []int{500, 5000, 50000} {
		elems := benchWorkload(b, n)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := freshen.MakePlan(elems, freshen.PlanConfig{Bandwidth: float64(n) / 2}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPlanPartitioned(b *testing.B) {
	for _, n := range []int{5000, 50000, 200000} {
		elems := benchWorkload(b, n)
		cfg := freshen.PlanConfig{
			Bandwidth:     float64(n) / 2,
			Strategy:      freshen.StrategyPartitioned,
			Key:           freshen.KeyPF,
			NumPartitions: 100,
		}
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := freshen.MakePlan(elems, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPlanClustered(b *testing.B) {
	for _, n := range []int{5000, 50000} {
		elems := benchWorkload(b, n)
		cfg := freshen.DefaultHeuristics(float64(n)/2, 50)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := freshen.MakePlan(elems, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSimulatePeriod(b *testing.B) {
	elems := benchWorkload(b, 500)
	plan, err := freshen.MakePlan(elems, freshen.PlanConfig{Bandwidth: 250})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := freshen.Simulate(freshen.SimConfig{
			Elements:          elems,
			Freqs:             plan.Freqs,
			Periods:           10,
			WarmupPeriods:     1,
			AccessesPerPeriod: 10000,
			Seed:              int64(i + 1),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1000000:
		return "N=" + itoa(n/1000000) + "M"
	case n >= 1000:
		return "N=" + itoa(n/1000) + "k"
	default:
		return "N=" + itoa(n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
